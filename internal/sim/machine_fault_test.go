package sim

import (
	"testing"

	"hetbench/internal/fault"
	"hetbench/internal/trace"
)

func faultPolicy() fault.Policy { return fault.DefaultPolicy() }

// launchUntil drives checked launches until the injector yields an event,
// returning it (the test configs make one near-certain within a few draws).
func launchUntil(t *testing.T, m *Machine, name string) *fault.Event {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if _, ev := m.LaunchKernelChecked(OnAccelerator, name, cost()); ev != nil {
			return ev
		}
	}
	t.Fatal("no fault drawn in 1000 launches at a 0.75 rate")
	return nil
}

func TestCheckedLaunchWithoutInjector(t *testing.T) {
	a, b := NewDGPU(), NewDGPU()
	ra := a.LaunchKernel(OnAccelerator, "k", cost())
	rb, ev := b.LaunchKernelChecked(OnAccelerator, "k", cost())
	if ev != nil {
		t.Fatal("checked launch without injector produced a fault event")
	}
	if ra != rb || a.ElapsedNs() != b.ElapsedNs() {
		t.Error("checked launch diverges from plain launch with no injector")
	}
	if b.FaultNs() != 0 {
		t.Error("fault clock nonzero without injector")
	}
}

func TestCheckedLaunchFail(t *testing.T) {
	m := NewDGPU()
	m.SetFaultInjector(fault.New(fault.Config{Seed: 1, LaunchFailRate: 0.75}), faultPolicy())
	ev := launchUntil(t, m, "k")
	if ev.Kind != fault.LaunchFail {
		t.Fatalf("event kind %q, want launch-fail", ev.Kind)
	}
	if m.FaultNs() <= 0 {
		t.Error("failed launch charged no fault time")
	}
	if got := m.ElapsedNs() - m.KernelNs() - m.FaultNs(); got != 0 {
		t.Errorf("clock does not split into kernel+fault time (residue %g)", got)
	}
}

func TestCheckedLaunchHangChargesWatchdog(t *testing.T) {
	m := NewDGPU()
	pol := faultPolicy()
	m.SetFaultInjector(fault.New(fault.Config{Seed: 1, HangRate: 0.75}), pol)
	before := m.FaultNs()
	ev := launchUntil(t, m, "k")
	if ev.Kind != fault.Hang {
		t.Fatalf("event kind %q, want hang", ev.Kind)
	}
	if got := m.FaultNs() - before; got != pol.WatchdogNs {
		t.Errorf("hang charged %g ns, want the %g ns watchdog deadline", got, pol.WatchdogNs)
	}
	if m.Resilience().WatchdogKills != 1 {
		t.Errorf("WatchdogKills = %d, want 1", m.Resilience().WatchdogKills)
	}
}

func TestCheckedLaunchBitFlipStillRuns(t *testing.T) {
	m := NewDGPU()
	m.SetFaultInjector(fault.New(fault.Config{Seed: 1, BitFlipRate: 0.75}), faultPolicy())
	kernels := m.KernelNs()
	ev := launchUntil(t, m, "k")
	if ev.Kind != fault.BitFlip {
		t.Fatalf("event kind %q, want bit-flip", ev.Kind)
	}
	if m.KernelNs() <= kernels {
		t.Error("bit-flipped launch did not charge kernel time (it completes)")
	}
	if m.FaultNs() != 0 {
		t.Error("silent corruption must not charge fault time")
	}
}

func TestUncheckedLaunchBypassesInjector(t *testing.T) {
	m := NewDGPU()
	inj := fault.New(fault.Config{Seed: 1, LaunchFailRate: 0.75})
	m.SetFaultInjector(inj, faultPolicy())
	for i := 0; i < 100; i++ {
		if r := m.LaunchKernel(OnAccelerator, "k", cost()); r.TimeNs <= 0 {
			t.Fatal("unchecked launch perturbed by injector")
		}
	}
	// Host launches are never injected either, even via the checked path.
	if _, ev := m.LaunchKernelChecked(OnHost, "k", cost()); ev != nil {
		t.Fatal("host launch drew a fault")
	}
	if inj.Total() != 0 {
		t.Errorf("injector consulted %d times by unchecked/host paths", inj.Total())
	}
}

func TestTransferRetransmission(t *testing.T) {
	clean := NewDGPU()
	base := clean.TransferToDevice("buf", 1<<20)

	m := NewDGPU()
	m.SetFaultInjector(fault.New(fault.Config{Seed: 2, TransferCorruptRate: 0.75}), faultPolicy())
	for i := 0; i < 200 && m.Resilience().Retransmits == 0; i++ {
		m.TransferToDevice("buf", 1<<20)
	}
	rs := m.Resilience()
	if rs.Retransmits == 0 {
		t.Fatal("no retransmission in 200 transfers at a 0.75 corruption rate")
	}
	if want := float64(rs.Retransmits) * base; m.FaultNs() != want {
		t.Errorf("fault time %g, want %d retransmits × %g ns", m.FaultNs(), rs.Retransmits, base)
	}
	// Good data still arrived exactly once per call: transferNs counts
	// only the successful passes.
	if m.FaultNs() <= 0 || m.TransferNs() <= 0 {
		t.Error("split clocks missing after retransmission")
	}
}

func TestTransferWaitsOutDeviceLoss(t *testing.T) {
	m := NewDGPU()
	inj := fault.New(fault.Config{Seed: 1, DeviceLossRate: 0.75, DeviceLossNs: 5e4})
	m.SetFaultInjector(inj, faultPolicy())
	for i := 0; i < 1000 && inj.LostUntilNs() <= m.ElapsedNs(); i++ {
		m.LaunchKernelChecked(OnAccelerator, "k", cost())
	}
	if inj.LostUntilNs() <= m.ElapsedNs() {
		t.Fatal("no device loss drawn")
	}
	wait := inj.LostUntilNs() - m.ElapsedNs()
	faultBefore := m.FaultNs()
	m.TransferToDevice("buf", 1<<10)
	if m.Resilience().DeviceWaits != 1 {
		t.Fatalf("DeviceWaits = %d, want 1", m.Resilience().DeviceWaits)
	}
	if got := m.FaultNs() - faultBefore; got < wait {
		t.Errorf("transfer waited %g ns, want at least the %g ns left in the loss window", got, wait)
	}
}

func TestBackoffAndFallbackAccounting(t *testing.T) {
	m := NewDGPU()
	m.SetFaultInjector(fault.New(fault.Config{Seed: 1}), faultPolicy())
	m.ChargeBackoffNs("k", 1000)
	m.ChargeBackoffNs("k", 2000)
	m.NoteFallback("k")
	rs := m.Resilience()
	if rs.Retries != 2 || rs.BackoffNs != 3000 || rs.Fallbacks != 1 {
		t.Errorf("stats = %+v, want 2 retries / 3000 ns backoff / 1 fallback", rs)
	}
	if m.FaultNs() != 3000 || m.ElapsedNs() != 3000 {
		t.Error("backoff not charged to the clocks as fault time")
	}
}

func TestResetClockClearsFaultState(t *testing.T) {
	m := NewDGPU()
	inj := fault.New(fault.Config{Seed: 1, DeviceLossRate: 0.75, DeviceLossNs: 1e9})
	m.SetFaultInjector(inj, faultPolicy())
	launchUntil(t, m, "k")
	if inj.LostUntilNs() == 0 {
		t.Fatal("loss window not opened")
	}
	m.ResetClock()
	if m.FaultNs() != 0 {
		t.Error("ResetClock left fault time on the clock")
	}
	if inj.LostUntilNs() != 0 {
		t.Error("ResetClock left the device-loss window open")
	}
	if m.Resilience().WatchdogKills+m.Resilience().Retries < 0 {
		t.Error("impossible") // stats survive reset by design; just touch them
	}
}

func TestFaultTraceSpansAndCounters(t *testing.T) {
	m := NewDGPU()
	tr := trace.New()
	m.SetTracer(tr)
	inj := fault.New(fault.Config{Seed: 3, LaunchFailRate: 0.5, TransferCorruptRate: 0.5})
	m.SetFaultInjector(inj, faultPolicy())
	for i := 0; i < 50; i++ {
		m.LaunchKernelChecked(OnAccelerator, "k", cost())
		m.TransferToDevice("buf", 1<<16)
	}
	m.ChargeBackoffNs("k", 500)
	m.NoteFallback("k")

	reg := tr.Metrics()
	if got := reg.Get(trace.CtrFaultPrefix + string(fault.LaunchFail)); got != float64(inj.Count(fault.LaunchFail)) {
		t.Errorf("launch-fail counter %g, injector saw %d", got, inj.Count(fault.LaunchFail))
	}
	if got := reg.Get(trace.CtrRetransmits); got != float64(m.Resilience().Retransmits) {
		t.Errorf("retransmit counter %g, machine saw %d", got, m.Resilience().Retransmits)
	}
	if reg.Get(trace.CtrFaultNs) != m.FaultNs() {
		t.Errorf("fault.ns counter %g != machine fault clock %g", reg.Get(trace.CtrFaultNs), m.FaultNs())
	}
	if reg.Get(trace.CtrRetries) != 1 || reg.Get(trace.CtrBackoffNs) != 500 || reg.Get(trace.CtrFallbacks) != 1 {
		t.Error("backoff/fallback counters not published")
	}
	var faultSpans int
	for _, s := range tr.Spans() {
		if s.Kind == trace.KindFault {
			faultSpans++
			if s.DurNs < 0 {
				t.Errorf("fault span %q has negative duration", s.Name)
			}
		}
	}
	if faultSpans == 0 {
		t.Error("no KindFault spans emitted")
	}
}
