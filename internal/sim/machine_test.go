package sim

import (
	"sync"
	"testing"

	"hetbench/internal/sim/device"
	"hetbench/internal/sim/timing"
)

func cost() timing.KernelCost {
	return timing.KernelCost{Items: 1 << 16, SPFlops: 100, LoadBytes: 16, Instrs: 50, MissRate: 0.3, Coalesce: 1, VecEff: 1}
}

func TestStockMachines(t *testing.T) {
	apu := NewAPU()
	if !apu.Unified() {
		t.Error("APU must be unified")
	}
	if apu.Link() != nil {
		t.Error("APU must have no PCIe link")
	}
	dgpu := NewDGPU()
	if dgpu.Unified() {
		t.Error("dGPU machine must not be unified")
	}
	if dgpu.Link() == nil {
		t.Error("dGPU machine must have a PCIe link")
	}
	if apu.Name() == "" || dgpu.Name() == "" {
		t.Error("machines must be named")
	}
	if dgpu.Host().Kind != device.KindCPU || dgpu.Accelerator().Kind != device.KindDiscreteGPU {
		t.Error("dGPU machine device kinds wrong")
	}
}

func TestKernelAdvancesClock(t *testing.T) {
	m := NewAPU()
	r := m.LaunchKernel(OnAccelerator, "k1", cost())
	if r.TimeNs <= 0 {
		t.Fatal("kernel time not positive")
	}
	if m.ElapsedNs() != r.TimeNs {
		t.Errorf("clock = %g, want %g", m.ElapsedNs(), r.TimeNs)
	}
	if m.KernelNs() != r.TimeNs || m.TransferNs() != 0 {
		t.Error("split clocks wrong after kernel")
	}
}

func TestTransfersFreeOnAPUCostlyOnDGPU(t *testing.T) {
	apu, dgpu := NewAPU(), NewDGPU()
	const bytes = 240 << 20 // the XSBench lookup table
	if ns := apu.TransferToDevice("xs table", bytes); ns != 0 {
		t.Errorf("APU transfer cost %g ns, want 0", ns)
	}
	ns := dgpu.TransferToDevice("xs table", bytes)
	if ns <= 0 {
		t.Fatal("dGPU transfer cost nothing")
	}
	if ms := ns / 1e6; ms < 30 || ms > 60 {
		t.Errorf("240 MB over PCIe = %g ms, want ≈40", ms)
	}
	if dgpu.TransferNs() != ns || dgpu.KernelNs() != 0 {
		t.Error("split clocks wrong after transfer")
	}
	if dgpu.Link().Stats().BytesToDevice != bytes {
		t.Error("PCIe ledger not updated")
	}
	dgpu.TransferFromDevice("result", 1024)
	if dgpu.Link().Stats().TransfersFromDevice != 1 {
		t.Error("d2h not recorded")
	}
}

func TestHostVsAcceleratorTargets(t *testing.T) {
	m := NewDGPU()
	k := cost()
	rHost := m.LaunchKernel(OnHost, "k", k)
	rAccel := m.LaunchKernel(OnAccelerator, "k", k)
	// The 32-CU GPU must beat the 4-core CPU on this parallel kernel.
	if rAccel.TimeNs >= rHost.TimeNs {
		t.Errorf("accelerator (%g ns) not faster than host (%g ns)", rAccel.TimeNs, rHost.TimeNs)
	}
}

func TestEventLog(t *testing.T) {
	m := NewDGPU()
	m.EnableEventLog(true)
	m.TransferToDevice("in", 4096)
	m.LaunchKernel(OnAccelerator, "work", cost())
	m.TransferFromDevice("out", 4096)
	ev := m.Events()
	if len(ev) != 3 {
		t.Fatalf("logged %d events, want 3", len(ev))
	}
	if ev[0].Kind != EvHostToDevice || ev[1].Kind != EvKernel || ev[2].Kind != EvDeviceToHost {
		t.Errorf("event kinds = %v %v %v", ev[0].Kind, ev[1].Kind, ev[2].Kind)
	}
	if ev[1].Name != "work" || ev[1].Bound == "" {
		t.Error("kernel event missing name/bound")
	}
	m.ResetClock()
	if m.ElapsedNs() != 0 || len(m.Events()) != 0 {
		t.Error("ResetClock incomplete")
	}
}

func TestAddHostTime(t *testing.T) {
	m := NewAPU()
	m.AddHostTime("serial part", 1234)
	if m.ElapsedNs() != 1234 || m.KernelNs() != 1234 {
		t.Error("AddHostTime not accounted")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative host time did not panic")
		}
	}()
	m.AddHostTime("bad", -1)
}

func TestNegativeTransferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative transfer did not panic")
		}
	}()
	NewDGPU().TransferToDevice("bad", -1)
}

func TestConcurrentClock(t *testing.T) {
	m := NewAPU()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				m.LaunchKernel(OnAccelerator, "k", cost())
			}
		}()
	}
	wg.Wait()
	one := NewAPU().LaunchKernel(OnAccelerator, "k", cost()).TimeNs
	want := one * 400
	got := m.ElapsedNs()
	if got < want*0.999 || got > want*1.001 {
		t.Errorf("concurrent clock = %g, want %g", got, want)
	}
}

func TestIPCAndBoundedness(t *testing.T) {
	m := NewDGPU()
	if m.Boundedness() != "Unknown" || m.IPC() != 0 {
		t.Error("fresh machine must report Unknown/0")
	}
	// Memory-hog kernel.
	memCost := timing.KernelCost{Items: 1 << 20, SPFlops: 2, LoadBytes: 256, Instrs: 20, MissRate: 0.9, Coalesce: 1, VecEff: 1}
	m.LaunchKernel(OnAccelerator, "stream", memCost)
	if got := m.Boundedness(); got != "Memory" {
		t.Errorf("boundedness = %s, want Memory", got)
	}
	if m.IPC() <= 0 {
		t.Error("IPC not accumulated")
	}
	// Now dominate with compute.
	cpuCost := timing.KernelCost{Items: 1 << 22, SPFlops: 2000, LoadBytes: 8, Instrs: 2200, MissRate: 0.05, Coalesce: 1, VecEff: 1}
	m.LaunchKernel(OnAccelerator, "flops", cpuCost)
	m.LaunchKernel(OnAccelerator, "flops", cpuCost)
	if got := m.Boundedness(); got != "Compute" {
		t.Errorf("boundedness = %s, want Compute after flop-heavy kernels", got)
	}
	m.ResetClock()
	if m.Boundedness() != "Unknown" {
		t.Error("ResetClock did not clear boundedness")
	}
}

func TestCostLogReplayMatchesClock(t *testing.T) {
	rec := NewDGPU()
	rec.EnableCostLog()
	c := cost()
	rec.LaunchKernel(OnAccelerator, "a", c)
	rec.LaunchKernel(OnHost, "b", c)
	log := rec.CostLog()
	if len(log) != 2 || log[0].Name != "a" || log[1].Target != OnHost {
		t.Fatalf("cost log = %+v", log)
	}
	// Replaying on an identical machine reproduces the kernel clock.
	replay := NewDGPU()
	for _, lc := range log {
		replay.LaunchKernel(lc.Target, lc.Name, lc.Cost)
	}
	if replay.KernelNs() != rec.KernelNs() {
		t.Errorf("replayed clock %g != recorded %g", replay.KernelNs(), rec.KernelNs())
	}
	// ResetClock clears the log but keeps logging enabled.
	rec.ResetClock()
	if len(rec.CostLog()) != 0 {
		t.Error("ResetClock did not clear cost log")
	}
	rec.LaunchKernel(OnAccelerator, "c", c)
	if len(rec.CostLog()) != 1 {
		t.Error("cost logging disabled after ResetClock")
	}
}

func TestNewCustomValidates(t *testing.T) {
	bad := device.R9280X()
	bad.ComputeUnits = 0
	defer func() {
		if recover() == nil {
			t.Error("NewCustom with invalid device did not panic")
		}
	}()
	NewCustom("broken", device.HostCPU(), bad, nil)
}
