// Package memory models the DRAM subsystem of a simulated device: the
// bandwidth it can deliver at a given memory clock, how that bandwidth is
// throttled when the cores do not generate enough outstanding requests
// (the latency limit that shapes the paper's Figure 7 at low core clocks),
// and how long a given volume of DRAM traffic takes to drain.
package memory

import (
	"fmt"

	"hetbench/internal/sim/device"
)

// Efficiency is the fraction of theoretical DRAM bandwidth that streaming
// kernels achieve in practice (row-buffer conflicts, refresh, command
// overhead). ~85% matches measured STREAM-like numbers on both GDDR5 and
// DDR3 systems of the era.
const Efficiency = 0.85

// System models one device's path to DRAM.
type System struct {
	dev *device.Device
	// memClockMHz is the active memory clock, which experiments may
	// override (Fig 7 sweeps 480–1250 MHz on the dGPU).
	memClockMHz int
}

// NewSystem builds a memory system for dev at its catalog memory clock.
func NewSystem(dev *device.Device) *System {
	return &System{dev: dev, memClockMHz: dev.MemClockMHz}
}

// SetMemClock overrides the memory clock in MHz. It panics on non-positive
// values: clock overrides come from experiment code, not user input.
func (s *System) SetMemClock(mhz int) {
	if mhz <= 0 {
		panic(fmt.Sprintf("memory: invalid clock %d MHz", mhz))
	}
	s.memClockMHz = mhz
}

// MemClock returns the active memory clock in MHz.
func (s *System) MemClock() int { return s.memClockMHz }

// PeakBandwidthGBs returns the raw DRAM bandwidth at the active clock.
func (s *System) PeakBandwidthGBs() float64 {
	return s.dev.BandwidthAt(s.memClockMHz)
}

// RequestLimitedBandwidthGBs returns the bandwidth ceiling imposed by the
// cores' ability to keep requests in flight, at the given core clock.
//
// Little's law: sustainable request throughput = outstanding / latency.
// Each compute unit can keep MaxOutstandingReqs cache lines in flight and
// issues requests at a rate proportional to its clock. At low core clocks
// the issue rate, not DRAM, is the bottleneck — this term is what makes
// read-benchmark's memory-frequency scaling flatten at 200–300 MHz core
// clocks in Figure 7a.
func (s *System) RequestLimitedBandwidthGBs(coreMHz int) float64 {
	d := s.dev
	// Requests in flight across the whole device.
	outstanding := float64(d.ComputeUnits * d.MaxOutstandingReqs)
	// Latency shrinks slightly as memory clocks rise (command rate), so
	// scale the DRAM-bound half of latency with the clock ratio.
	lat := s.latencyNs()
	latencyBound := outstanding * float64(d.CacheLineBytes) / lat // bytes/ns = GB/s
	// Issue-rate bound: a CU sustains roughly one vector-memory cache
	// line per memIssueCadence core clocks once address generation, L1
	// and L2 arbitration are accounted. At catalog clocks this sits just
	// above the derated DRAM peak (so DRAM binds), but at 200–300 MHz it
	// clamps hard — the Figure 7 flattening.
	const memIssueCadence = 8.0
	issuePerNs := float64(d.ComputeUnits) * float64(coreMHz) / 1000.0 / memIssueCadence
	issueBound := issuePerNs * float64(d.CacheLineBytes)
	if issueBound < latencyBound {
		return issueBound
	}
	return latencyBound
}

func (s *System) latencyNs() float64 {
	d := s.dev
	scale := float64(d.MemClockMHz) / float64(s.memClockMHz)
	// Half the latency is DRAM-array time (clock-dependent), half is
	// fixed interconnect time.
	return d.MemLatencyNs * (0.5 + 0.5*scale)
}

// EffectiveBandwidthGBs returns the bandwidth a kernel actually sees at a
// core clock: the minimum of DRAM peak (scaled by Efficiency) and the
// request-generation limit.
func (s *System) EffectiveBandwidthGBs(coreMHz int) float64 {
	peak := s.PeakBandwidthGBs() * Efficiency
	limited := s.RequestLimitedBandwidthGBs(coreMHz)
	if limited < peak {
		return limited
	}
	return peak
}

// DrainTimeNs returns the time to move `bytes` of DRAM traffic at the
// effective bandwidth, plus one access latency for the leading edge.
func (s *System) DrainTimeNs(bytes float64, coreMHz int) float64 {
	if bytes <= 0 {
		return 0
	}
	bw := s.EffectiveBandwidthGBs(coreMHz) // GB/s == bytes/ns
	return s.latencyNs() + bytes/bw
}
