package memory

import (
	"testing"
	"testing/quick"

	"hetbench/internal/sim/device"
)

func TestPeakScalesWithMemClock(t *testing.T) {
	s := NewSystem(device.R9280X())
	base := s.PeakBandwidthGBs()
	s.SetMemClock(s.MemClock() / 2)
	if got := s.PeakBandwidthGBs(); got >= base {
		t.Errorf("halving clock left bandwidth %g >= %g", got, base)
	}
	s.SetMemClock(device.R9280X().MemClockMHz)
	if got := s.PeakBandwidthGBs(); got != base {
		t.Errorf("restored bandwidth %g != %g", got, base)
	}
}

func TestSetMemClockPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetMemClock(0) did not panic")
		}
	}()
	NewSystem(device.R9280X()).SetMemClock(0)
}

func TestEffectiveBandwidthBelowPeak(t *testing.T) {
	s := NewSystem(device.R9280X())
	d := device.R9280X()
	for _, core := range []int{200, 400, 600, 800, 925, 1000} {
		eff := s.EffectiveBandwidthGBs(core)
		if eff <= 0 {
			t.Errorf("core %d: effective bandwidth %g <= 0", core, eff)
		}
		if eff > s.PeakBandwidthGBs()*Efficiency+1e-9 {
			t.Errorf("core %d: effective %g exceeds derated peak", core, eff)
		}
		_ = d
	}
}

// The Figure 7 interaction: at low core clocks the request-generation limit
// binds, so raising memory frequency yields no benefit; at high core clocks
// DRAM binds and memory frequency matters.
func TestLowCoreClockStarvesMemory(t *testing.T) {
	d := device.R9280X()
	lowCore := 200

	sLow := NewSystem(d)
	sLow.SetMemClock(480)
	sHigh := NewSystem(d)
	sHigh.SetMemClock(1250)

	atLow := sLow.EffectiveBandwidthGBs(lowCore)
	atHigh := sHigh.EffectiveBandwidthGBs(lowCore)
	if ratio := atHigh / atLow; ratio > 1.15 {
		t.Errorf("at %d MHz core, mem 480→1250 scaled bandwidth by %.2f×; want ≈flat (request-limited)", lowCore, ratio)
	}

	// At full core clock the same memory sweep must scale substantially.
	fullCore := d.CoreClockMHz
	atLowFull := sLow.EffectiveBandwidthGBs(fullCore)
	atHighFull := sHigh.EffectiveBandwidthGBs(fullCore)
	if ratio := atHighFull / atLowFull; ratio < 2.0 {
		t.Errorf("at %d MHz core, mem 480→1250 scaled bandwidth by only %.2f×; want ≥2×", fullCore, ratio)
	}
}

func TestEffectiveBandwidthMonotone(t *testing.T) {
	s := NewSystem(device.R9280X())
	f := func(a, b uint16) bool {
		ca, cb := int(a%1800)+100, int(b%1800)+100
		if ca > cb {
			ca, cb = cb, ca
		}
		return s.EffectiveBandwidthGBs(ca) <= s.EffectiveBandwidthGBs(cb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("effective bandwidth not monotone in core clock: %v", err)
	}
}

func TestDrainTime(t *testing.T) {
	s := NewSystem(device.R9280X())
	if got := s.DrainTimeNs(0, 925); got != 0 {
		t.Errorf("DrainTimeNs(0) = %g, want 0", got)
	}
	if got := s.DrainTimeNs(-5, 925); got != 0 {
		t.Errorf("DrainTimeNs(-5) = %g, want 0", got)
	}
	// 219 GB/s effective → 1 GB drains in ≈4.56 ms.
	oneGB := s.DrainTimeNs(1e9, 925)
	if oneGB < 4e6 || oneGB > 6e6 {
		t.Errorf("1 GB drain = %g ns, want ≈4.6e6", oneGB)
	}
	// More bytes take strictly longer.
	if s.DrainTimeNs(2e9, 925) <= oneGB {
		t.Error("drain time not increasing in bytes")
	}
}

func TestAPUBandwidthIsSmall(t *testing.T) {
	apu := NewSystem(device.A10_7850K())
	dgpu := NewSystem(device.R9280X())
	ra := apu.EffectiveBandwidthGBs(720)
	rd := dgpu.EffectiveBandwidthGBs(925)
	if rd/ra < 5 {
		t.Errorf("dGPU/APU bandwidth ratio = %.1f, want order of magnitude (paper: 258 vs 33)", rd/ra)
	}
}
