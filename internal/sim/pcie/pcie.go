// Package pcie models the PCI Express link between host memory and a
// discrete GPU: fixed per-transfer setup latency plus payload time at the
// link's effective bandwidth, and an accounting ledger so experiments can
// attribute how much of a run went to data movement (the paper's central
// discrete-GPU result).
package pcie

import (
	"fmt"
	"sync"
)

// Link describes one PCIe connection.
type Link struct {
	// Name labels the link in reports ("PCIe 3.0 x16").
	Name string
	// BandwidthGBs is effective payload bandwidth per direction.
	// PCIe 3.0 x16 is 15.75 GB/s raw; ~12 GB/s effective after TLP
	// overhead. The 2015 Catalyst stack measured ~6 GB/s for pageable
	// host memory, which we use as the default.
	BandwidthGBs float64
	// LatencyUs is the fixed cost of one DMA transfer (driver call,
	// ring-buffer kick, completion interrupt).
	LatencyUs float64

	mu    sync.Mutex
	stats Stats
}

// Stats is the ledger of traffic over a link.
type Stats struct {
	TransfersToDevice   int
	TransfersFromDevice int
	BytesToDevice       int64
	BytesFromDevice     int64
	TotalTimeUs         float64
}

// Default returns the link used for the R9 280X experiments: PCIe 3.0 x16
// with the era's driver stack.
func Default() *Link {
	return &Link{Name: "PCIe 3.0 x16", BandwidthGBs: 6.0, LatencyUs: 20}
}

// Validate reports an error if the link parameters are unusable.
func (l *Link) Validate() error {
	if l.BandwidthGBs <= 0 {
		return fmt.Errorf("pcie %s: bandwidth %g must be positive", l.Name, l.BandwidthGBs)
	}
	if l.LatencyUs < 0 {
		return fmt.Errorf("pcie %s: latency %g must be non-negative", l.Name, l.LatencyUs)
	}
	return nil
}

// TransferTimeUs returns the time to move n bytes one way, in microseconds.
// Zero-byte transfers still pay the setup latency (a real cudaMemcpy of 0
// bytes does too), but negative sizes are a caller bug.
func (l *Link) TransferTimeUs(bytes int64) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("pcie: negative transfer size %d", bytes))
	}
	// bytes / (GB/s) = ns; convert to us.
	return l.LatencyUs + float64(bytes)/l.BandwidthGBs/1e3
}

// ToDevice records a host→device transfer and returns its duration in us.
func (l *Link) ToDevice(bytes int64) float64 {
	t := l.TransferTimeUs(bytes)
	l.mu.Lock()
	l.stats.TransfersToDevice++
	l.stats.BytesToDevice += bytes
	l.stats.TotalTimeUs += t
	l.mu.Unlock()
	return t
}

// FromDevice records a device→host transfer and returns its duration in us.
func (l *Link) FromDevice(bytes int64) float64 {
	t := l.TransferTimeUs(bytes)
	l.mu.Lock()
	l.stats.TransfersFromDevice++
	l.stats.BytesFromDevice += bytes
	l.stats.TotalTimeUs += t
	l.mu.Unlock()
	return t
}

// Stats returns a snapshot of the ledger.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Reset clears the ledger.
func (l *Link) Reset() {
	l.mu.Lock()
	l.stats = Stats{}
	l.mu.Unlock()
}
