package pcie

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default link invalid: %v", err)
	}
}

func TestValidateRejectsBadLinks(t *testing.T) {
	bad := []Link{
		{Name: "zero bw", BandwidthGBs: 0, LatencyUs: 1},
		{Name: "neg bw", BandwidthGBs: -2, LatencyUs: 1},
		{Name: "neg lat", BandwidthGBs: 6, LatencyUs: -1},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("Validate(%s) = nil, want error", bad[i].Name)
		}
	}
}

func TestTransferTime(t *testing.T) {
	l := &Link{Name: "test", BandwidthGBs: 6, LatencyUs: 20}
	// Zero bytes: just latency.
	if got := l.TransferTimeUs(0); got != 20 {
		t.Errorf("TransferTimeUs(0) = %g, want 20", got)
	}
	// 6 GB at 6 GB/s = 1 s = 1e6 us (+20).
	if got := l.TransferTimeUs(6e9); got < 1e6 || got > 1e6+21 {
		t.Errorf("TransferTimeUs(6GB) = %g, want ≈1e6", got)
	}
	// 240 MB lookup table (the XSBench case) ≈ 40 ms.
	ms := l.TransferTimeUs(240<<20) / 1e3
	if ms < 35 || ms > 50 {
		t.Errorf("240 MB transfer = %g ms, want ≈40", ms)
	}
}

func TestTransferTimePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative transfer did not panic")
		}
	}()
	Default().TransferTimeUs(-1)
}

func TestLedger(t *testing.T) {
	l := Default()
	l.ToDevice(1000)
	l.ToDevice(2000)
	l.FromDevice(500)
	s := l.Stats()
	if s.TransfersToDevice != 2 || s.TransfersFromDevice != 1 {
		t.Errorf("transfer counts = %d/%d, want 2/1", s.TransfersToDevice, s.TransfersFromDevice)
	}
	if s.BytesToDevice != 3000 || s.BytesFromDevice != 500 {
		t.Errorf("bytes = %d/%d, want 3000/500", s.BytesToDevice, s.BytesFromDevice)
	}
	if s.TotalTimeUs <= 0 {
		t.Error("total time not accumulated")
	}
	l.Reset()
	if l.Stats() != (Stats{}) {
		t.Error("Reset did not clear ledger")
	}
}

func TestConcurrentLedger(t *testing.T) {
	l := Default()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.ToDevice(64)
				l.FromDevice(64)
			}
		}()
	}
	wg.Wait()
	s := l.Stats()
	if s.TransfersToDevice != 800 || s.TransfersFromDevice != 800 {
		t.Errorf("concurrent counts = %d/%d, want 800/800", s.TransfersToDevice, s.TransfersFromDevice)
	}
}

func TestQuickMonotoneInBytes(t *testing.T) {
	l := Default()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return l.TransferTimeUs(x) <= l.TransferTimeUs(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
