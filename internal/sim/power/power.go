// Package power models device energy consumption, the quantity behind
// the paper's opening motivation ("maximize performance while staying
// under power and thermal constraints"). The model is the standard
// first-order one:
//
//	P_dynamic ∝ C·V²·f with V ∝ f in the DVFS range → P_dyn ∝ f³
//	P_total = P_idle + utilization·P_dyn(f) + DRAM energy/byte + link energy/byte
//
// parameterized per device from published board powers, and integrated
// over the simulated activity (kernel time at the active clock, DRAM
// traffic, PCIe traffic) to give energy-to-solution.
package power

import (
	"fmt"

	"hetbench/internal/sim/device"
)

// Profile holds one device's power parameters.
type Profile struct {
	// IdleW is board power doing nothing.
	IdleW float64
	// DynamicW is the additional power at full utilization at the
	// catalog core clock (scales as (f/f0)³ with DVFS).
	DynamicW float64
	// DRAMPicoJPerByte is DRAM access energy.
	DRAMPicoJPerByte float64
}

// Validate reports unusable profiles.
func (p Profile) Validate() error {
	if p.IdleW < 0 || p.DynamicW <= 0 || p.DRAMPicoJPerByte < 0 {
		return fmt.Errorf("power: invalid profile %+v", p)
	}
	return nil
}

// PCIePicoJPerByte is the link energy for discrete-GPU transfers
// (controller + PHY both ends).
const PCIePicoJPerByte = 30

// ProfileFor returns published-number-based profiles for the stock
// devices: the R9 280X is a 250 W board (≈60 W idle); the A10-7850K is a
// 95 W part sharing ≈15 W idle; GDDR5 costs ≈18 pJ/B, DDR3 ≈12 pJ/B at
// the device interface.
func ProfileFor(d *device.Device) Profile {
	switch d.Kind {
	case device.KindDiscreteGPU:
		return Profile{IdleW: 60, DynamicW: 190, DRAMPicoJPerByte: 18}
	case device.KindIntegratedGPU:
		return Profile{IdleW: 10, DynamicW: 55, DRAMPicoJPerByte: 12}
	default: // CPU
		return Profile{IdleW: 15, DynamicW: 80, DRAMPicoJPerByte: 12}
	}
}

// KernelEnergyJ integrates energy over a kernel: busyNs at the given core
// clock (MHz, against the catalog f0) plus DRAM traffic.
func (p Profile) KernelEnergyJ(busyNs float64, coreMHz, catalogMHz int, dramBytes float64) float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if busyNs < 0 || dramBytes < 0 {
		panic(fmt.Sprintf("power: negative activity busy=%g dram=%g", busyNs, dramBytes))
	}
	fRatio := float64(coreMHz) / float64(catalogMHz)
	dyn := p.DynamicW * fRatio * fRatio * fRatio
	// Watts × ns = nJ; ÷1e9 → J.
	compute := (p.IdleW + dyn) * busyNs / 1e9
	dram := p.DRAMPicoJPerByte * dramBytes / 1e12
	return compute + dram
}

// TransferEnergyJ is the PCIe energy for moved bytes (zero bytes = zero —
// idle power during transfers is charged by the host-side accounting).
func TransferEnergyJ(bytes int64) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("power: negative transfer %d", bytes))
	}
	return PCIePicoJPerByte * float64(bytes) / 1e12
}
