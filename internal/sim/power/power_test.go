package power

import (
	"math"
	"testing"
	"testing/quick"

	"hetbench/internal/sim/device"
)

func TestProfilesValidate(t *testing.T) {
	for _, d := range []*device.Device{device.R9280X(), device.A10_7850K(), device.HostCPU()} {
		if err := ProfileFor(d).Validate(); err != nil {
			t.Errorf("%s profile invalid: %v", d.Name, err)
		}
	}
	if err := (Profile{IdleW: -1, DynamicW: 1}).Validate(); err == nil {
		t.Error("negative idle accepted")
	}
	if err := (Profile{IdleW: 1, DynamicW: 0}).Validate(); err == nil {
		t.Error("zero dynamic accepted")
	}
}

func TestKernelEnergyBasics(t *testing.T) {
	p := ProfileFor(device.R9280X())
	// 250 W (60 idle + 190 dynamic) for 1 ms = 0.25 J.
	e := p.KernelEnergyJ(1e6, 925, 925, 0)
	if math.Abs(e-0.25) > 1e-9 {
		t.Errorf("energy = %g J, want 0.25", e)
	}
	// DVFS: dynamic power scales with the cube of the clock ratio.
	eHalf := p.KernelEnergyJ(1e6, 462, 925, 0)
	want := (60 + 190*math.Pow(462.0/925.0, 3)) * 1e-3
	if math.Abs(eHalf-want) > 1e-9 {
		t.Errorf("half-clock energy = %g J, want %g", eHalf, want)
	}
	// DRAM energy: 1 GB at 18 pJ/B = 0.018 J.
	eDram := p.KernelEnergyJ(0, 925, 925, 1e9)
	if math.Abs(eDram-0.018) > 1e-9 {
		t.Errorf("DRAM energy = %g J, want 0.018", eDram)
	}
}

func TestTransferEnergy(t *testing.T) {
	// 1 GB over PCIe at 30 pJ/B = 0.03 J.
	if e := TransferEnergyJ(1 << 30); math.Abs(e-0.0322) > 0.001 {
		t.Errorf("transfer energy = %g J, want ≈0.032", e)
	}
	if TransferEnergyJ(0) != 0 {
		t.Error("zero transfer has energy")
	}
}

func TestPanicsOnNegativeActivity(t *testing.T) {
	p := ProfileFor(device.R9280X())
	cases := []func(){
		func() { p.KernelEnergyJ(-1, 925, 925, 0) },
		func() { p.KernelEnergyJ(1, 925, 925, -1) },
		func() { TransferEnergyJ(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestQuickEnergyMonotone(t *testing.T) {
	p := ProfileFor(device.A10_7850K())
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return p.KernelEnergyJ(x, 720, 720, 0) <= p.KernelEnergyJ(y, 720, 720, 0)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
