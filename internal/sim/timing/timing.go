// Package timing converts measured kernel work (flops, bytes, instructions)
// into simulated execution time on a described device.
//
// The model is a roofline with a latency/request-generation refinement:
//
//	t_kernel = max(t_alu, t_mem, t_lds, t_issue) + t_launch
//
// where t_mem uses the memory system's effective bandwidth at the active
// core clock (so starving the memory system at low core clocks flattens
// memory scaling, as in the paper's Figure 7), and t_alu is scaled by the
// programming model's vectorization efficiency (the per-compiler code-
// generation quality that the paper measures with read-benchmark).
package timing

import (
	"fmt"
	"math"

	"hetbench/internal/sim/device"
	"hetbench/internal/sim/memory"
)

// Precision selects single or double precision arithmetic throughput.
type Precision int

const (
	// Single precision (32-bit floats).
	Single Precision = iota
	// Double precision (64-bit floats); throughput scaled by DPRatio.
	Double
)

// String names the precision.
func (p Precision) String() string {
	if p == Double {
		return "double"
	}
	return "single"
}

// KernelCost is the aggregate work of one kernel launch, measured by the
// functional executor (see sim/exec) or declared by a host-side phase.
type KernelCost struct {
	// Items is the global work size (number of work items executed).
	Items int

	// Per-item averages, measured during functional execution.
	SPFlops    float64 // single-precision floating point operations
	DPFlops    float64 // double-precision floating point operations
	LoadBytes  float64 // bytes read from global memory
	StoreBytes float64 // bytes written to global memory
	LDSBytes   float64 // bytes moved through the local data store
	Instrs     float64 // total dynamic instructions (for IPC)

	// MissRate is the fraction of global-memory traffic that reaches
	// DRAM (measured by replaying the kernel's access pattern through
	// the cache simulator); the remainder hits in the LLC.
	MissRate float64
	// Coalesce is the memory coalescing efficiency in (0,1]: 1 means
	// perfectly contiguous wavefront accesses; 1/16 models a fully
	// scattered gather where each lane touches its own cache line.
	Coalesce float64

	// VecEff in (0,1] derates ALU throughput for compiler quality; 1 is
	// hand-tuned OpenCL, lower values model the emerging models'
	// code generators. Zero means "unset" and is treated as 1.
	VecEff float64
	// MemEff in (0,1] derates achieved memory bandwidth for compiler
	// quality: generated code with fewer outstanding loads, missed
	// unrolling or poorer address arithmetic sustains a fraction of the
	// bandwidth hand-tuned code reaches (the paper's read-benchmark
	// kernel gaps: OpenCL 1×, C++ AMP 1/1.3, OpenACC 1/2). Zero means
	// "unset" and is treated as 1.
	MemEff float64
	// SerialFraction in [0,1) is the fraction of t_alu that cannot be
	// spread across lanes (e.g. OpenACC falling back to scalar code
	// executes with SerialFraction close to 1).
	SerialFraction float64
}

// Validate reports obviously-broken costs (negative work).
func (k KernelCost) Validate() error {
	switch {
	case k.Items <= 0:
		return fmt.Errorf("timing: Items %d must be positive", k.Items)
	case k.SPFlops < 0 || k.DPFlops < 0 || k.LoadBytes < 0 || k.StoreBytes < 0 || k.LDSBytes < 0 || k.Instrs < 0:
		return fmt.Errorf("timing: negative per-item work: %+v", k)
	case k.MissRate < 0 || k.MissRate > 1:
		return fmt.Errorf("timing: MissRate %g outside [0,1]", k.MissRate)
	case k.Coalesce < 0 || k.Coalesce > 1:
		return fmt.Errorf("timing: Coalesce %g outside [0,1]", k.Coalesce)
	case k.VecEff < 0 || k.VecEff > 1:
		return fmt.Errorf("timing: VecEff %g outside [0,1]", k.VecEff)
	case k.MemEff < 0 || k.MemEff > 1:
		return fmt.Errorf("timing: MemEff %g outside [0,1]", k.MemEff)
	case k.SerialFraction < 0 || k.SerialFraction >= 1:
		return fmt.Errorf("timing: SerialFraction %g outside [0,1)", k.SerialFraction)
	}
	return nil
}

// Result is the timing breakdown of one kernel launch.
type Result struct {
	TimeNs   float64 // total, including launch overhead
	ALUNs    float64
	MemNs    float64
	LDSNs    float64
	IssueNs  float64
	LaunchNs float64
	// DRAMBytes is the modeled DRAM traffic (after cache filtering and
	// coalescing derate).
	DRAMBytes float64
	// Bound names the limiting resource: "alu", "mem", "lds" or "issue".
	Bound string
	// IPC is dynamic instructions per device clock cycle, the Table I
	// normalization (instructions per cycle per SIMD, averaged over CUs).
	IPC float64
}

// Model computes kernel time on one device at possibly-overridden clocks.
type Model struct {
	dev  *device.Device
	mem  *memory.System
	core int // active core clock MHz
}

// NewModel builds a timing model at the device's catalog clocks.
func NewModel(dev *device.Device) *Model {
	return &Model{dev: dev, mem: memory.NewSystem(dev), core: dev.CoreClockMHz}
}

// SetCoreClock overrides the core clock (MHz) for sweep experiments.
func (m *Model) SetCoreClock(mhz int) {
	if mhz <= 0 {
		panic(fmt.Sprintf("timing: invalid core clock %d", mhz))
	}
	m.core = mhz
}

// SetMemClock overrides the memory clock (MHz).
func (m *Model) SetMemClock(mhz int) { m.mem.SetMemClock(mhz) }

// CoreClock returns the active core clock in MHz.
func (m *Model) CoreClock() int { return m.core }

// MemClock returns the active memory clock in MHz.
func (m *Model) MemClock() int { return m.mem.MemClock() }

// Device returns the device being modeled.
func (m *Model) Device() *device.Device { return m.dev }

// Memory exposes the memory system (for transfer-free bandwidth queries).
func (m *Model) Memory() *memory.System { return m.mem }

// Kernel computes the time for one launch with the given aggregate cost.
// Precision selects which flop class dominates the DP derate; both SP and
// DP work are always accounted.
func (m *Model) Kernel(k KernelCost) Result {
	if err := k.Validate(); err != nil {
		panic(err)
	}
	d := m.dev
	vec := k.VecEff
	if vec == 0 {
		vec = 1
	}
	coal := k.Coalesce
	if coal == 0 {
		coal = 1
	}

	// Round the work up to whole waves spread across CUs: a 100-item
	// launch on a 2048-lane GPU still occupies whole wavefronts.
	lanes := float64(d.TotalLanes())
	waveItems := math.Ceil(float64(k.Items)/float64(d.WavefrontSize)) * float64(d.WavefrontSize)
	if waveItems < lanes {
		// Under-occupied device: only waveItems lanes do work but the
		// elapsed time is set by one wave's latency; modeled by
		// treating occupancy as waveItems/lanes of peak.
		lanes = waveItems
	}

	coreGHz := float64(m.core) / 1000.0

	// ALU time. Parallel portion runs across lanes at vec efficiency;
	// serial portion runs on a single lane.
	spRate := lanes * d.FlopsPerLanePerClock * coreGHz * vec             // flops/ns
	dpRate := lanes * d.FlopsPerLanePerClock * coreGHz * vec * d.DPRatio // flops/ns
	oneLaneSP := d.FlopsPerLanePerClock * coreGHz                        // flops/ns on one lane
	oneLaneDP := oneLaneSP * d.DPRatio
	items := float64(k.Items)
	par := 1 - k.SerialFraction
	var alu float64
	if k.SPFlops > 0 {
		alu += par*items*k.SPFlops/spRate + k.SerialFraction*items*k.SPFlops/oneLaneSP/float64(d.ComputeUnits)
	}
	if k.DPFlops > 0 {
		alu += par*items*k.DPFlops/dpRate + k.SerialFraction*items*k.DPFlops/oneLaneDP/float64(d.ComputeUnits)
	}

	// Memory time: traffic that reaches DRAM after cache filtering,
	// inflated by poor coalescing (partial cache lines fetched whole).
	traffic := items * (k.LoadBytes + k.StoreBytes)
	dram := traffic * k.MissRate / coal
	mem := m.mem.DrainTimeNs(dram, m.core)
	if k.MemEff > 0 && k.MemEff < 1 {
		// Derate the bandwidth-proportional part for compiler quality,
		// leaving the leading-edge latency untouched.
		lat := mem - dram/m.mem.EffectiveBandwidthGBs(m.core)
		if dram > 0 {
			mem = lat + (mem-lat)/k.MemEff
		}
	}

	// LDS time.
	var lds float64
	if k.LDSBytes > 0 && d.LDSBandwidthGBs > 0 {
		ldsBW := d.LDSBandwidthGBs * float64(m.core) / float64(d.CoreClockMHz)
		lds = items * k.LDSBytes / ldsBW
	}

	// Instruction issue: each CU issues up to 1 wavefront instruction
	// per clock (GCN front end per SIMD every 4 clocks × 4 SIMDs).
	var issue float64
	if k.Instrs > 0 {
		waveInstrs := waveItems / float64(d.WavefrontSize) * k.Instrs
		width := d.IssuePerClock
		if width <= 0 {
			width = 1
		}
		issueRate := float64(d.ComputeUnits) * coreGHz * width // wave-instrs/ns
		issue = waveInstrs / issueRate / vec
	}

	launch := d.KernelLaunchOverheadUs * 1e3

	bound, tmax := "alu", alu
	if mem > tmax {
		bound, tmax = "mem", mem
	}
	if lds > tmax {
		bound, tmax = "lds", lds
	}
	if issue > tmax {
		bound, tmax = "issue", issue
	}

	total := tmax + launch

	// IPC: dynamic wavefront instructions per device cycle, normalized
	// per CU (matches the scale of Table I: 0.1–0.9).
	var ipc float64
	if total > 0 && k.Instrs > 0 {
		cycles := total * coreGHz // device cycles (ns × GHz)
		waveInstrs := waveItems / float64(d.WavefrontSize) * k.Instrs
		ipc = waveInstrs / cycles / float64(d.ComputeUnits)
	}

	return Result{
		TimeNs:    total,
		ALUNs:     alu,
		MemNs:     mem,
		LDSNs:     lds,
		IssueNs:   issue,
		LaunchNs:  launch,
		DRAMBytes: dram,
		Bound:     bound,
		IPC:       ipc,
	}
}
