package timing

import (
	"testing"
	"testing/quick"

	"hetbench/internal/sim/device"
)

func computeBound() KernelCost {
	return KernelCost{
		Items:     1 << 20,
		SPFlops:   500,
		LoadBytes: 8, StoreBytes: 4,
		Instrs:   200,
		MissRate: 0.1,
		Coalesce: 1,
		VecEff:   1,
	}
}

func memoryBound() KernelCost {
	return KernelCost{
		Items:     1 << 20,
		SPFlops:   4,
		LoadBytes: 256, StoreBytes: 4,
		Instrs:   40,
		MissRate: 0.9,
		Coalesce: 1,
		VecEff:   1,
	}
}

func TestValidate(t *testing.T) {
	if err := computeBound().Validate(); err != nil {
		t.Fatalf("good cost rejected: %v", err)
	}
	bad := []func(*KernelCost){
		func(k *KernelCost) { k.Items = 0 },
		func(k *KernelCost) { k.SPFlops = -1 },
		func(k *KernelCost) { k.LoadBytes = -1 },
		func(k *KernelCost) { k.MissRate = 1.5 },
		func(k *KernelCost) { k.Coalesce = -0.1 },
		func(k *KernelCost) { k.VecEff = 2 },
		func(k *KernelCost) { k.SerialFraction = 1 },
	}
	for i, mut := range bad {
		k := computeBound()
		mut(&k)
		if err := k.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestKernelPanicsOnInvalidCost(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid cost did not panic")
		}
	}()
	NewModel(device.R9280X()).Kernel(KernelCost{Items: -1})
}

func TestBoundClassification(t *testing.T) {
	m := NewModel(device.R9280X())
	if r := m.Kernel(computeBound()); r.Bound != "alu" {
		t.Errorf("compute-bound kernel classified as %q (alu=%g mem=%g issue=%g)", r.Bound, r.ALUNs, r.MemNs, r.IssueNs)
	}
	if r := m.Kernel(memoryBound()); r.Bound != "mem" {
		t.Errorf("memory-bound kernel classified as %q", r.Bound)
	}
}

// Fig 7 shape: a compute-bound kernel speeds up with core clock and ignores
// memory clock; a memory-bound kernel does the opposite (at high core clock).
func TestFrequencyScalingShapes(t *testing.T) {
	d := device.R9280X()

	timeAt := func(k KernelCost, core, mem int) float64 {
		m := NewModel(d)
		m.SetCoreClock(core)
		m.SetMemClock(mem)
		return m.Kernel(k).TimeNs
	}

	// Compute bound: core 400→925 should speed up by ≈2.3×.
	cb := computeBound()
	sp := timeAt(cb, 400, 1250) / timeAt(cb, 925, 1250)
	if sp < 1.8 || sp > 2.6 {
		t.Errorf("compute-bound core scaling 400→925 = %.2f×, want ≈2.3×", sp)
	}
	// ... and memory clock must not matter much.
	if r := timeAt(cb, 925, 480) / timeAt(cb, 925, 1250); r > 1.3 {
		t.Errorf("compute-bound mem sensitivity = %.2f×, want ≈1", r)
	}

	// Memory bound at full core clock: mem 480→1250 ≈ 2.6× ideally.
	mb := memoryBound()
	sm := timeAt(mb, 925, 480) / timeAt(mb, 925, 1250)
	if sm < 1.8 {
		t.Errorf("memory-bound mem scaling 480→1250 = %.2f×, want ≥1.8×", sm)
	}
	// At 200 MHz core the same sweep should flatten (request-limited).
	smLow := timeAt(mb, 200, 480) / timeAt(mb, 200, 1250)
	if smLow > 1.3 {
		t.Errorf("memory-bound mem scaling at 200 MHz core = %.2f×, want ≈flat", smLow)
	}
}

func TestVecEffSlowdown(t *testing.T) {
	m := NewModel(device.R9280X())
	k := computeBound()
	base := m.Kernel(k).TimeNs
	k.VecEff = 0.5
	if got := m.Kernel(k).TimeNs; got < base*1.7 {
		t.Errorf("half vec-eff gave %.2f× slowdown, want ≈2×", got/base)
	}
}

func TestSerialFractionHurts(t *testing.T) {
	m := NewModel(device.R9280X())
	k := computeBound()
	base := m.Kernel(k).TimeNs
	k.SerialFraction = 0.9
	if got := m.Kernel(k).TimeNs; got <= base*2 {
		t.Errorf("90%% serial gave only %.2f× slowdown", got/base)
	}
}

func TestDoublePrecisionRatio(t *testing.T) {
	// Pure-DP flavor of the compute-bound kernel on the dGPU (1/4 DP)
	// vs the APU GPU (1/16 DP): the APU should suffer a larger SP→DP
	// slowdown, matching Section VI-A.
	slowdown := func(d *device.Device) float64 {
		m := NewModel(d)
		sp := computeBound()
		dp := sp
		dp.SPFlops, dp.DPFlops = 0, sp.SPFlops
		dp.LoadBytes *= 2
		dp.StoreBytes *= 2
		return m.Kernel(dp).TimeNs / m.Kernel(sp).TimeNs
	}
	sdGPU := slowdown(device.R9280X())
	sAPU := slowdown(device.A10_7850K())
	if sdGPU < 3 || sdGPU > 5 {
		t.Errorf("dGPU DP slowdown = %.1f×, want ≈4×", sdGPU)
	}
	if sAPU < 10 {
		t.Errorf("APU DP slowdown = %.1f×, want ≈16×", sAPU)
	}
	if sAPU <= sdGPU {
		t.Error("APU must suffer more from DP than dGPU")
	}
}

func TestCoalescingPenalty(t *testing.T) {
	m := NewModel(device.R9280X())
	k := memoryBound()
	base := m.Kernel(k)
	k.Coalesce = 0.25
	scattered := m.Kernel(k)
	if scattered.DRAMBytes <= base.DRAMBytes {
		t.Error("poor coalescing did not inflate DRAM traffic")
	}
	if scattered.TimeNs <= base.TimeNs {
		t.Error("poor coalescing did not slow the kernel")
	}
}

func TestSmallLaunchDominatedByOverhead(t *testing.T) {
	m := NewModel(device.R9280X())
	k := KernelCost{Items: 64, SPFlops: 10, LoadBytes: 8, Instrs: 10, MissRate: 1, Coalesce: 1, VecEff: 1}
	r := m.Kernel(k)
	if r.LaunchNs < 0.5*r.TimeNs {
		t.Errorf("64-item launch: overhead %.0f of %.0f ns; want launch-dominated", r.LaunchNs, r.TimeNs)
	}
}

func TestIPCInTableOneRange(t *testing.T) {
	// Sanity: both kernel classes land in a plausible 0.01–2 IPC band.
	m := NewModel(device.R9280X())
	for _, k := range []KernelCost{computeBound(), memoryBound()} {
		ipc := m.Kernel(k).IPC
		if ipc <= 0.001 || ipc > 4 {
			t.Errorf("IPC = %g, want plausible (0.001, 4]", ipc)
		}
	}
	// Memory-bound, high-miss kernels have lower IPC than compute kernels.
	if m.Kernel(memoryBound()).IPC >= m.Kernel(computeBound()).IPC {
		t.Error("memory-bound IPC not lower than compute-bound IPC")
	}
}

func TestQuickTimeMonotoneInItems(t *testing.T) {
	m := NewModel(device.A10_7850K())
	f := func(a, b uint32) bool {
		x, y := int(a%1<<22)+1, int(b%1<<22)+1
		if x > y {
			x, y = y, x
		}
		kx, ky := memoryBound(), memoryBound()
		kx.Items, ky.Items = x, y
		return m.Kernel(kx).TimeNs <= m.Kernel(ky).TimeNs+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickTimeMonotoneInClock(t *testing.T) {
	f := func(a, b uint16) bool {
		ca, cb := int(a%1800)+100, int(b%1800)+100
		if ca > cb {
			ca, cb = cb, ca
		}
		ma, mb := NewModel(device.R9280X()), NewModel(device.R9280X())
		ma.SetCoreClock(ca)
		mb.SetCoreClock(cb)
		k := computeBound()
		return ma.Kernel(k).TimeNs >= mb.Kernel(k).TimeNs-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickTimeMonotoneInMissRate(t *testing.T) {
	m := NewModel(device.R9280X())
	f := func(a, b uint8) bool {
		ma, mb := float64(a)/255, float64(b)/255
		if ma > mb {
			ma, mb = mb, ma
		}
		ka, kb := memoryBound(), memoryBound()
		ka.MissRate, kb.MissRate = ma, mb
		return m.Kernel(ka).TimeNs <= m.Kernel(kb).TimeNs+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickTimeMonotoneInSerialFraction(t *testing.T) {
	m := NewModel(device.A10_7850K())
	f := func(a, b uint8) bool {
		sa, sb := float64(a)/256, float64(b)/256
		if sa > sb {
			sa, sb = sb, sa
		}
		ka, kb := computeBound(), computeBound()
		ka.SerialFraction, kb.SerialFraction = sa, sb
		return m.Kernel(ka).TimeNs <= m.Kernel(kb).TimeNs+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickMemEffMonotone(t *testing.T) {
	m := NewModel(device.R9280X())
	f := func(a, b uint8) bool {
		ea := 0.1 + 0.9*float64(a)/255
		eb := 0.1 + 0.9*float64(b)/255
		if ea > eb {
			ea, eb = eb, ea
		}
		ka, kb := memoryBound(), memoryBound()
		ka.MemEff, kb.MemEff = ea, eb
		// Better MemEff (higher) → faster or equal.
		return m.Kernel(kb).TimeNs <= m.Kernel(ka).TimeNs+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAccessorsAndPrecisionString(t *testing.T) {
	m := NewModel(device.R9280X())
	if m.Device().Name != device.R9280X().Name {
		t.Error("Device() accessor wrong")
	}
	m.SetCoreClock(500)
	m.SetMemClock(700)
	if m.CoreClock() != 500 || m.MemClock() != 700 {
		t.Error("clock accessors wrong")
	}
	if Single.String() != "single" || Double.String() != "double" {
		t.Error("Precision.String wrong")
	}
	if m.Memory() == nil {
		t.Error("Memory() accessor nil")
	}
}

func TestSetCoreClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetCoreClock(-1) did not panic")
		}
	}()
	NewModel(device.R9280X()).SetCoreClock(-1)
}
