// Package sloc counts logical source lines of code (the SLOCCount
// methodology the paper cites: physical lines that are neither blank nor
// comment) and computes the paper's productivity metric,
//
//	productivity = (time_OMP / time_model) / (lines_model / lines_OMP)   (Eq. 1)
//
// Table IV's measured line counts for the five applications ship as the
// reference data set; the counter itself works on Go and C-family sources
// so the methodology is reproducible against this repository's own
// implementations.
package sloc

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// CountString counts logical SLOC in source text: lines that contain at
// least one token outside comments. Line comments (//) and block comments
// (/* */) are recognized; string literals are respected so a "//" inside
// a string does not start a comment.
func CountString(src string) int {
	count := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		if countsAsCode(line, &inBlock) {
			count++
		}
	}
	return count
}

// countsAsCode scans one line, updating block-comment state, and reports
// whether any code token appears.
func countsAsCode(line string, inBlock *bool) bool {
	code := false
	i := 0
	inStr, inChar, inRaw := false, false, false
	for i < len(line) {
		c := line[i]
		switch {
		case *inBlock:
			if c == '*' && i+1 < len(line) && line[i+1] == '/' {
				*inBlock = false
				i++
			}
		case inRaw:
			code = true
			if c == '`' {
				inRaw = false
			}
		case inStr:
			code = true
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inChar:
			code = true
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
		default:
			switch {
			case c == '/' && i+1 < len(line) && line[i+1] == '/':
				return code // rest of line is comment
			case c == '/' && i+1 < len(line) && line[i+1] == '*':
				*inBlock = true
				i++
			case c == '"':
				inStr = true
				code = true
			case c == '\'':
				inChar = true
				code = true
			case c == '`':
				inRaw = true
				code = true
			case c != ' ' && c != '\t' && c != '\r':
				code = true
			}
		}
		i++
	}
	return code
}

// CountFile counts logical SLOC in one file.
func CountFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("sloc: %w", err)
	}
	return CountString(string(data)), nil
}

// CountDir counts logical SLOC in all files under dir whose names match
// any of the extensions (e.g. ".go"). It returns the total and a per-file
// map of relative paths.
func CountDir(dir string, exts ...string) (int, map[string]int, error) {
	match := func(name string) bool {
		for _, e := range exts {
			if strings.HasSuffix(name, e) {
				return true
			}
		}
		return len(exts) == 0
	}
	total := 0
	perFile := map[string]int{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !match(info.Name()) {
			return nil
		}
		n, err := CountFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			rel = path
		}
		perFile[rel] = n
		total += n
		return nil
	})
	if err != nil {
		return 0, nil, fmt.Errorf("sloc: %w", err)
	}
	return total, perFile, nil
}

// Table4 is the paper's measured "source lines of code changed starting
// from the CPU serial implementation" (Table IV).
type Table4Row struct {
	App                             string
	OpenMP, OpenCL, CppAMP, OpenACC int
}

// Table4 returns the paper's Table IV, in paper order.
func Table4() []Table4Row {
	return []Table4Row{
		{"read-benchmark", 3, 181, 42, 40},
		{"LULESH", 107, 1357, 1087, 1276},
		{"CoMD", 23, 3716, 188, 183},
		{"XSBench", 13, 1468, 83, 113},
		{"miniFE", 18, 2869, 260, 43},
	}
}

// Productivity computes Eq. 1: speedup over OpenMP divided by the
// relative line count. Returns 0 for degenerate inputs rather than
// propagating NaN into reports.
func Productivity(timeOMP, timeModel float64, linesModel, linesOMP int) float64 {
	if timeModel <= 0 || timeOMP <= 0 || linesModel <= 0 || linesOMP <= 0 {
		return 0
	}
	speedup := timeOMP / timeModel
	relLines := float64(linesModel) / float64(linesOMP)
	return speedup / relLines
}

// HarmonicMean returns the harmonic mean of positive values (the paper's
// "Har. Mean" column in Figure 10); non-positive values make it 0.
func HarmonicMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += 1 / v
	}
	return float64(len(vals)) / sum
}
