package sloc

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestCountString(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"empty", "", 0},
		{"blank lines", "\n\n  \n\t\n", 0},
		{"simple", "a := 1\nb := 2\n", 2},
		{"line comment only", "// hello\n// world\n", 0},
		{"trailing comment", "x := 1 // set x\n", 1},
		{"block comment", "/* a\nb\nc */\nx := 1\n", 1},
		{"block with code before", "x := 1 /* comment", 1},
		{"block with code after", "/* c */ x := 1", 1},
		{"comment chars in string", `s := "// not a comment"`, 1},
		{"comment chars in raw string", "s := `/* nope */`", 1},
		{"char literal", `c := '"'` + "\nd := 2", 2},
		{"multiline block then code", "/*\nlots\nof\ncomment\n*/\ncode()\n", 1},
		{"escaped quote", `s := "a\"// still string"` + "\ny := 1", 2},
	}
	for _, c := range cases {
		if got := CountString(c.src); got != c.want {
			t.Errorf("%s: CountString = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestCountFileAndDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package a\n\n// doc\nfunc A() {}\n")
	write("b.go", "package a\nvar X = 1\n")
	write("c.txt", "not counted\n")

	n, err := CountFile(filepath.Join(dir, "a.go"))
	if err != nil || n != 2 {
		t.Errorf("CountFile = %d, %v; want 2, nil", n, err)
	}
	total, perFile, err := CountDir(dir, ".go")
	if err != nil {
		t.Fatal(err)
	}
	if total != 4 {
		t.Errorf("CountDir total = %d, want 4", total)
	}
	if len(perFile) != 2 {
		t.Errorf("CountDir files = %d, want 2", len(perFile))
	}
	if _, err := CountFile(filepath.Join(dir, "missing.go")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	rows := Table4()
	if len(rows) != 5 {
		t.Fatalf("Table IV has %d rows, want 5", len(rows))
	}
	// Spot checks from the paper.
	if rows[0].App != "read-benchmark" || rows[0].OpenCL != 181 || rows[0].OpenMP != 3 {
		t.Errorf("read-benchmark row wrong: %+v", rows[0])
	}
	if rows[2].App != "CoMD" || rows[2].OpenCL != 3716 || rows[2].OpenACC != 183 {
		t.Errorf("CoMD row wrong: %+v", rows[2])
	}
	// "OpenCL requires 4× more lines than both C++ AMP and OpenACC" for
	// read-benchmark.
	if r := float64(rows[0].OpenCL) / float64(rows[0].CppAMP); r < 4 {
		t.Errorf("read-benchmark OpenCL/AMP lines = %.1f, want >4", r)
	}
	// "C++ AMP came a close second by requiring 15% more changes on an
	// average than OpenACC" — check the geometric sense loosely: total
	// AMP lines within 2× of ACC.
	ampTotal, accTotal := 0, 0
	for _, r := range rows {
		ampTotal += r.CppAMP
		accTotal += r.OpenACC
	}
	if ampTotal > 2*accTotal {
		t.Errorf("AMP total %d vs ACC total %d: not close", ampTotal, accTotal)
	}
}

func TestProductivity(t *testing.T) {
	// Same speedup, fewer lines → higher productivity.
	pFew := Productivity(100, 10, 40, 3)
	pMany := Productivity(100, 10, 181, 3)
	if pFew <= pMany {
		t.Errorf("fewer lines not more productive: %g <= %g", pFew, pMany)
	}
	// Eq. 1 by hand: speedup 10, relative lines 181/3.
	want := 10.0 / (181.0 / 3.0)
	if math.Abs(pMany-want) > 1e-12 {
		t.Errorf("productivity = %g, want %g", pMany, want)
	}
	// Degenerate inputs are 0, not NaN.
	for _, p := range []float64{
		Productivity(0, 10, 40, 3),
		Productivity(100, 0, 40, 3),
		Productivity(100, 10, 0, 3),
		Productivity(100, 10, 40, 0),
	} {
		if p != 0 || math.IsNaN(p) {
			t.Errorf("degenerate productivity = %g, want 0", p)
		}
	}
}

func TestQuickProductivityScaleInvariance(t *testing.T) {
	// Scaling both times by the same factor leaves productivity fixed.
	f := func(a, b uint16, k uint8) bool {
		tOMP, tM := float64(a)+1, float64(b)+1
		scale := float64(k) + 1
		p1 := Productivity(tOMP, tM, 100, 10)
		p2 := Productivity(tOMP*scale, tM*scale, 100, 10)
		return math.Abs(p1-p2) < 1e-9*p1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("HM(1,1,1) = %g", got)
	}
	if got := HarmonicMean([]float64{2, 6, 6}); math.Abs(got-3.6) > 1e-12 {
		t.Errorf("HM(2,6,6) = %g, want 3.6", got)
	}
	if HarmonicMean(nil) != 0 {
		t.Error("HM(nil) != 0")
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Error("HM with zero != 0")
	}
	// HM ≤ arithmetic mean.
	f := func(a, b, c uint8) bool {
		v := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		am := (v[0] + v[1] + v[2]) / 3
		return HarmonicMean(v) <= am+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The counter applied to this repository's own implementations: the
// OpenCL app code (explicit staging) must be bulkier than the OpenACC
// directive-style code for the same benchmark, mirroring Table IV's
// direction — checked on the readmem implementation file, whose per-model
// functions live in one file; here we simply require the counter to run
// over the repo without error and produce nonzero counts.
func TestCountRepoSources(t *testing.T) {
	total, files, err := CountDir("../apps/readmem", ".go")
	if err != nil {
		t.Fatalf("counting repo sources: %v", err)
	}
	if total < 100 || len(files) < 2 {
		t.Errorf("repo count = %d lines in %d files; want substantial", total, len(files))
	}
}
