package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// Perfetto and chrome://tracing load). Timestamps and durations are in
// microseconds.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track ordering inside each process: phases on top, then the two compute
// clocks, then the link. Unknown tracks sort after these.
var trackOrder = map[string]int{
	TrackPhases:      0,
	TrackHost:        1,
	TrackAccelerator: 2,
	TrackPCIe:        3,
}

func trackTid(track string, extra map[string]int) int {
	if tid, ok := trackOrder[track]; ok {
		return tid
	}
	if tid, ok := extra[track]; ok {
		return tid
	}
	tid := len(trackOrder) + len(extra)
	extra[track] = tid
	return tid
}

// WriteChrome serializes the tracer's spans as Chrome trace_event JSON:
// one pid per registered machine, one tid per virtual-clock track
// (phases/host/accelerator/pcie), with process_name and thread_name
// metadata so Perfetto labels the rows. Complete ("X") events are sorted
// by start time per track, so per-track timestamps are monotone. The
// run-wide counter registry rides along as a "hetbench_counters"
// metadata event (args hold the full snapshot, kernel/transfer/fault
// counters included).
func WriteChrome(w io.Writer, t *Tracer) error {
	spans := ByStart(t.Spans())
	procs := t.Processes()

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for pid, name := range procs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]interface{}{"name": name},
		})
	}
	if snap := t.Metrics().Snapshot(); len(snap) > 0 {
		args := make(map[string]interface{}, len(snap))
		for k, v := range snap {
			args[k] = v
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "hetbench_counters", Ph: "M", Pid: 0, Args: args,
		})
	}
	if hists := t.Metrics().Histograms(); len(hists) > 0 {
		args := make(map[string]interface{}, len(hists))
		for name, h := range hists {
			args[name] = map[string]interface{}{
				"count": h.Count(),
				"p50":   h.Quantile(0.50),
				"p95":   h.Quantile(0.95),
				"p99":   h.Quantile(0.99),
				"max":   h.Max(),
				"mean":  h.Mean(),
			}
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "hetbench_histograms", Ph: "M", Pid: 0, Args: args,
		})
	}

	extraTids := make(map[string]int)
	seenTracks := make(map[[2]int]string)
	for _, s := range spans {
		tid := trackTid(s.Track, extraTids)
		key := [2]int{s.Proc, tid}
		if _, ok := seenTracks[key]; !ok {
			seenTracks[key] = s.Track
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: s.Proc, Tid: tid,
				Args: map[string]interface{}{"name": s.Track},
			})
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: s.Proc, Tid: tid,
				Args: map[string]interface{}{"sort_index": tid},
			})
		}
		dur := s.DurNs / 1e3
		ev := chromeEvent{
			Name: s.Name,
			Cat:  string(s.Kind),
			Ph:   "X",
			Ts:   s.StartNs / 1e3,
			Dur:  &dur,
			Pid:  s.Proc,
			Tid:  tid,
			Args: spanArgs(s),
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func spanArgs(s Span) map[string]interface{} {
	args := make(map[string]interface{})
	if s.Device != "" {
		args["device"] = s.Device
	}
	if s.Bound != "" {
		args["bound"] = s.Bound
	}
	if s.Dir != "" {
		args["dir"] = s.Dir
	}
	if s.Bytes != 0 {
		args["bytes"] = s.Bytes
	}
	if s.Items != 0 {
		args["items"] = s.Items
	}
	if s.Wavefronts != 0 {
		args["wavefronts"] = s.Wavefronts
	}
	if len(args) == 0 {
		return nil
	}
	return args
}
