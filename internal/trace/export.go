package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteCSV serializes the spans as CSV (one row per span, timeline order)
// for downstream plotting.
func WriteCSV(w io.Writer, t *Tracer) error {
	procs := t.Processes()
	var b strings.Builder
	b.WriteString("proc,track,kind,name,start_ns,dur_ns,device,bound,dir,bytes,items,wavefronts\n")
	for _, s := range ByStart(t.Spans()) {
		proc := fmt.Sprintf("%d", s.Proc)
		if s.Proc >= 0 && s.Proc < len(procs) {
			proc = procs[s.Proc]
		}
		fmt.Fprintf(&b, "%s,%s,%s,%s,%.1f,%.1f,%s,%s,%s,%d,%d,%d\n",
			csvQuote(proc), s.Track, s.Kind, csvQuote(s.Name),
			s.StartNs, s.DurNs, csvQuote(s.Device), s.Bound, s.Dir,
			s.Bytes, s.Items, s.Wavefronts)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteMetricsCSV serializes the tracer's counter registry as CSV: one
// row per counter (type "counter", the value column) and one per
// histogram (type "hist", with count and the p50/p95/p99/max quantile
// columns in ns). Rows are sorted by name within each type, so the file
// is byte-identical for identical registries — including across -jobs
// settings, because per-cell registries merge in deterministic cell
// order.
func WriteMetricsCSV(w io.Writer, t *Tracer) error {
	reg := t.Metrics()
	var b strings.Builder
	b.WriteString("type,name,value,count,p50_ns,p95_ns,p99_ns,max_ns\n")
	snap := reg.Snapshot()
	for _, name := range reg.Names() {
		fmt.Fprintf(&b, "counter,%s,%g,,,,,\n", csvQuote(name), snap[name])
	}
	for _, name := range reg.HistNames() {
		h := reg.Hist(name)
		fmt.Fprintf(&b, "hist,%s,,%d,%.1f,%.1f,%.1f,%.1f\n",
			csvQuote(name), h.Count(),
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Agg is one name's aggregate over a span set.
type Agg struct {
	Name    string
	Kind    Kind
	Calls   int
	TotalNs float64
	Bytes   int64
	Bound   string
}

// Aggregate groups spans of the given kinds by name and returns the
// aggregates sorted by total time, descending. An empty kinds set
// aggregates everything.
func Aggregate(spans []Span, kinds ...Kind) []Agg {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	byName := make(map[string]*Agg)
	order := []string{}
	for _, s := range spans {
		if len(want) > 0 && !want[s.Kind] {
			continue
		}
		a := byName[s.Name]
		if a == nil {
			a = &Agg{Name: s.Name, Kind: s.Kind}
			byName[s.Name] = a
			order = append(order, s.Name)
		}
		a.Calls++
		a.TotalNs += s.DurNs
		a.Bytes += s.Bytes
		if s.Bound != "" {
			a.Bound = s.Bound
		}
	}
	out := make([]Agg, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TotalNs > out[j].TotalNs })
	return out
}

// TotalNs sums the durations of an aggregate set.
func TotalNs(aggs []Agg) float64 {
	var t float64
	for _, a := range aggs {
		t += a.TotalNs
	}
	return t
}
