package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteCSV serializes the spans as CSV (one row per span, timeline order)
// for downstream plotting.
func WriteCSV(w io.Writer, t *Tracer) error {
	procs := t.Processes()
	var b strings.Builder
	b.WriteString("proc,track,kind,name,start_ns,dur_ns,device,bound,dir,bytes,items,wavefronts\n")
	for _, s := range ByStart(t.Spans()) {
		proc := fmt.Sprintf("%d", s.Proc)
		if s.Proc >= 0 && s.Proc < len(procs) {
			proc = procs[s.Proc]
		}
		fmt.Fprintf(&b, "%s,%s,%s,%s,%.1f,%.1f,%s,%s,%s,%d,%d,%d\n",
			csvQuote(proc), s.Track, s.Kind, csvQuote(s.Name),
			s.StartNs, s.DurNs, csvQuote(s.Device), s.Bound, s.Dir,
			s.Bytes, s.Items, s.Wavefronts)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Agg is one name's aggregate over a span set.
type Agg struct {
	Name    string
	Kind    Kind
	Calls   int
	TotalNs float64
	Bytes   int64
	Bound   string
}

// Aggregate groups spans of the given kinds by name and returns the
// aggregates sorted by total time, descending. An empty kinds set
// aggregates everything.
func Aggregate(spans []Span, kinds ...Kind) []Agg {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	byName := make(map[string]*Agg)
	order := []string{}
	for _, s := range spans {
		if len(want) > 0 && !want[s.Kind] {
			continue
		}
		a := byName[s.Name]
		if a == nil {
			a = &Agg{Name: s.Name, Kind: s.Kind}
			byName[s.Name] = a
			order = append(order, s.Name)
		}
		a.Calls++
		a.TotalNs += s.DurNs
		a.Bytes += s.Bytes
		if s.Bound != "" {
			a.Bound = s.Bound
		}
	}
	out := make([]Agg, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TotalNs > out[j].TotalNs })
	return out
}

// TotalNs sums the durations of an aggregate set.
func TotalNs(aggs []Agg) float64 {
	var t float64
	for _, a := range aggs {
		t += a.TotalNs
	}
	return t
}
