package trace

import "math"

// Canonical histogram names the simulator publishes. Histograms live in
// their own "hist." namespace (enforced by hetlint's counterkey analyzer)
// so a registry snapshot cleanly separates scalar totals from
// distributions. Each name records one hot path's per-operation latency
// in virtual nanoseconds.
const (
	// HistKernelNs is the per-launch kernel latency distribution,
	// published by sim.Machine on every successful launch.
	HistKernelNs = "hist.kernel.ns"
	// HistTransferNs is the per-transfer PCIe service-time distribution.
	HistTransferNs = "hist.transfer.ns"
	// HistFaultNs is the per-event fault recovery cost distribution:
	// failed attempts, watchdog waits, backoff delays, retransmissions
	// and device-loss stalls, one observation each.
	HistFaultNs = "hist.fault.recovery.ns"
	// HistChunkNs is the co-execution scheduler's per-chunk service-time
	// distribution across both device queues.
	HistChunkNs = "hist.sched.chunk.ns"
	// HistCellNs is the experiment runner's per-cell wall-time
	// distribution. It is wall-clock (not virtual) time, so the runner
	// keeps it in its Stats rather than in any merged capture registry —
	// the name exists so progress events and stats lines share one label.
	HistCellNs = "hist.runner.cell.ns"
	// HistServiceRequestNs is hetbenchd's end-to-end request latency
	// distribution (wall-clock, admission through response), published to
	// the service's own registry — never to an experiment capture, so it
	// cannot perturb golden output.
	HistServiceRequestNs = "hist.service.request.ns"
	// HistFleetQueueNs is the fleet simulator's per-job queue-wait
	// distribution: virtual time between a job's arrival at the cluster
	// and the start of its (final, post-migration) service.
	HistFleetQueueNs = "hist.fleet.queue.ns"
	// HistFleetJobNs is the fleet simulator's per-job sojourn distribution:
	// virtual time from arrival to completion, including queueing, any
	// migration penalties and wasted partial executions.
	HistFleetJobNs = "hist.fleet.job.ns"
)

// Histogram bucket layout: log-linear buckets in the HDR-histogram
// style — one octave per power of two, each octave split into four
// linear sub-buckets (boundaries at 2^oct × {1, 1.25, 1.5, 1.75}, so
// 12.5–25% relative width) — spanning [1, 2^64) with one underflow and
// one overflow bucket. Every boundary is an exact binary fraction times
// a power of two, so bucketing involves no transcendental math: a value
// lands in the same bucket on every platform and every run — the
// property that makes per-cell histograms mergeable in deterministic
// cell order with bit-identical results at any worker count.
const (
	histSubBuckets = 4
	histOctaves    = 64
	// histBuckets = underflow + histOctaves*histSubBuckets + overflow.
	histBuckets = histOctaves*histSubBuckets + 2
	// histMax is the first value past the last finite bucket (2^64).
	histMax = 0x1p64
)

// histBucket maps a value to its bucket index. Values below 1 (including
// zero, negatives and NaN, which durations never are) share the
// underflow bucket; values at or above 2^64 share the overflow bucket.
func histBucket(v float64) int {
	if !(v >= 1) { // NaN-safe: NaN fails every comparison
		return 0
	}
	if v >= histMax {
		return histBuckets - 1
	}
	frac, exp := math.Frexp(v)                // v = frac * 2^exp, frac in [0.5, 1)
	oct := exp - 1                            // v in [2^oct, 2^(oct+1))
	sub := int((frac*2 - 1) * histSubBuckets) // frac*2 in [1, 2): exact quarter steps
	return 1 + oct*histSubBuckets + sub
}

// histUpper returns bucket i's upper boundary (the value below which all
// of the bucket's observations fall). Bucket i covers
// [2^oct·(1+sub/4), 2^oct·(1+(sub+1)/4)) with oct = (i-1)/4 and
// sub = (i-1)%4. The underflow bucket's upper bound is 1; the overflow
// bucket has no finite bound and returns +Inf.
func histUpper(i int) float64 {
	if i <= 0 {
		return 1
	}
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	oct := (i - 1) / histSubBuckets
	sub := (i - 1) % histSubBuckets
	return math.Ldexp(1+float64(sub+1)/histSubBuckets, oct)
}

// Histogram is a fixed-boundary log-bucketed latency distribution. The
// zero value is empty and ready to use. Histogram is NOT internally
// synchronized — a Registry serializes access to the histograms it owns,
// and a stand-alone Histogram (the runner's cell-time tally) needs its
// owner's lock.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// Observe adds one value to the distribution.
func (h *Histogram) Observe(v float64) {
	h.counts[histBucket(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts:
// it walks the cumulative distribution to the covering bucket and reports
// that bucket's upper boundary, clamped into [Min, Max] so single-bucket
// and extreme quantiles stay within the observed range. The estimate is a
// pure function of the (deterministically merged) bucket counts, so it is
// bit-identical at any worker count. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// Rank of the target observation, 1-based: ceil(q * count).
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			est := histUpper(i)
			if est < h.min {
				est = h.min
			}
			if est > h.max {
				est = h.max
			}
			return est
		}
	}
	return h.max
}

// Merge folds src into h: bucket counts, count and sum accumulate,
// min/max widen. Merging per-cell histograms into the run-wide one in a
// fixed cell order replays the same addition sequence at any worker
// count, so the merged result is bit-identical (the counter Registry's
// contract, extended to distributions).
func (h *Histogram) Merge(src *Histogram) {
	if src == nil || src.count == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += src.counts[i]
	}
	if h.count == 0 || src.min < h.min {
		h.min = src.min
	}
	if h.count == 0 || src.max > h.max {
		h.max = src.max
	}
	h.count += src.count
	h.sum += src.sum
}

// Clone returns a copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	out := *h
	return &out
}
