package trace

import (
	"math"
	"testing"
)

// Every bucket's value range must sit strictly below its upper boundary
// and at or above the previous bucket's — otherwise quantiles drift.
func TestHistBucketBoundaries(t *testing.T) {
	for i := 1; i < histBuckets-1; i++ {
		lower := histUpper(i - 1)
		upper := histUpper(i)
		if !(lower < upper) {
			t.Fatalf("bucket %d: lower %g not below upper %g", i, lower, upper)
		}
		// The lower boundary itself belongs to bucket i, and the value just
		// below the upper boundary must not spill into bucket i+1.
		if got := histBucket(lower); got != i {
			t.Errorf("histBucket(%g) = %d, want %d", lower, got, i)
		}
		probe := math.Nextafter(upper, 0)
		if got := histBucket(probe); got != i {
			t.Errorf("histBucket(%g) = %d, want %d (upper %g)", probe, got, i, upper)
		}
	}
	// Underflow and overflow.
	for _, v := range []float64{0, -3, 0.5, math.Inf(-1), math.NaN()} {
		if got := histBucket(v); got != 0 {
			t.Errorf("histBucket(%g) = %d, want underflow bucket 0", v, got)
		}
	}
	if got := histBucket(math.Inf(1)); got != histBuckets-1 {
		t.Errorf("histBucket(+Inf) = %d, want overflow bucket %d", got, histBuckets-1)
	}
	if got := histBucket(math.Ldexp(1, 64)); got != histBuckets-1 {
		t.Errorf("histBucket(2^64) = %d, want overflow bucket %d", got, histBuckets-1)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for v := 1.0; v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("count/min/max = %d/%g/%g", h.Count(), h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Errorf("Mean = %g, want 500.5", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %g, want min 1", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("q1 = %g, want max 1000", got)
	}
	// A sub-bucket is at most 25% wide, so the estimate must sit within
	// one bucket width above the true quantile.
	for _, q := range []float64{0.5, 0.95, 0.99} {
		truth := q * 1000
		got := h.Quantile(q)
		if got < truth || got > truth*1.25 {
			t.Errorf("q%g = %g, want in [%g, %g]", q, got, truth, truth*1.25)
		}
	}
	// Quantiles never escape the observed range, even in overflow.
	h.Observe(math.Ldexp(1, 70))
	if got := h.Quantile(0.9999); got != math.Ldexp(1, 70) {
		t.Errorf("overflow quantile = %g, want clamped to max", got)
	}
}

// Merging per-part histograms must reproduce the single-histogram result
// exactly — the property the runner's deterministic fold relies on.
func TestHistMergeMatchesCombined(t *testing.T) {
	var whole, a, b Histogram
	for i := 0; i < 500; i++ {
		v := float64(i%97)*13.25 + 1
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	merged := a.Clone()
	merged.Merge(&b)
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() {
		t.Fatalf("count/sum: merged %d/%g, whole %d/%g", merged.Count(), merged.Sum(), whole.Count(), whole.Sum())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Errorf("min/max: merged %g/%g, whole %g/%g", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if mq, wq := merged.Quantile(q), whole.Quantile(q); mq != wq {
			t.Errorf("q%g: merged %g, whole %g", q, mq, wq)
		}
	}
	// Merging an empty histogram is a no-op.
	before := *merged
	merged.Merge(&Histogram{})
	merged.Merge(nil)
	if *merged != before {
		t.Error("merging empty/nil changed the histogram")
	}
}

func TestRegistryHistograms(t *testing.T) {
	var r Registry
	if r.Hist(HistKernelNs) != nil || len(r.HistNames()) != 0 {
		t.Fatal("fresh registry reports histograms")
	}
	r.Observe(HistKernelNs, 10)
	r.Observe(HistKernelNs, 20)
	r.Observe(HistTransferNs, 5)
	names := r.HistNames()
	if len(names) != 2 || names[0] != HistKernelNs || names[1] != HistTransferNs {
		t.Fatalf("HistNames = %v", names)
	}
	h := r.Hist(HistKernelNs)
	if h.Count() != 2 || h.Sum() != 30 {
		t.Fatalf("kernel hist count/sum = %d/%g", h.Count(), h.Sum())
	}
	// Hist returns a copy: mutating it must not affect the registry.
	h.Observe(1e9)
	if got := r.Hist(HistKernelNs).Count(); got != 2 {
		t.Errorf("registry histogram mutated through the returned copy (count %d)", got)
	}

	var dst Registry
	dst.Observe(HistKernelNs, 40)
	dst.Merge(&r)
	if got := dst.Hist(HistKernelNs); got.Count() != 3 || got.Sum() != 70 {
		t.Errorf("merged kernel hist count/sum = %d/%g, want 3/70", got.Count(), got.Sum())
	}
	if got := dst.Hist(HistTransferNs); got == nil || got.Count() != 1 {
		t.Errorf("merge did not adopt the transfer histogram: %+v", got)
	}

	dst.Reset()
	if len(dst.HistNames()) != 0 {
		t.Error("Reset left histograms behind")
	}
}

// The steady-state Observe path (histogram already created) must not
// allocate: it runs inside the simulator's launch hot path.
func TestObserveSteadyStateAllocs(t *testing.T) {
	var r Registry
	r.Observe(HistKernelNs, 1)
	if avg := testing.AllocsPerRun(1000, func() {
		r.Observe(HistKernelNs, 42)
	}); avg != 0 {
		t.Errorf("Registry.Observe steady state allocates %.1f/op, want 0", avg)
	}
	var h Histogram
	h.Observe(1)
	if avg := testing.AllocsPerRun(1000, func() {
		h.Observe(42)
	}); avg != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op, want 0", avg)
	}
}
