package trace

import (
	"sort"
	"sync"
)

// Canonical counter names the simulator publishes. Substrates add to these
// instead of keeping private accumulators, so any consumer (the energy
// extension, the profile experiment, dashboards) reads one registry.
const (
	CtrKernelLaunches = "kernel.launches"
	CtrKernelNs       = "kernel.ns"
	CtrTransferCount  = "transfer.count"
	CtrTransferNs     = "transfer.ns"
	CtrBytesH2D       = "transfer.h2d.bytes"
	CtrBytesD2H       = "transfer.d2h.bytes"
	CtrDRAMBytes      = "dram.bytes"
	CtrLLCHitBytes    = "llc.hit.bytes"
	CtrLLCMissBytes   = "llc.miss.bytes"
	CtrLDSBytes       = "lds.bytes"
	CtrSPFlops        = "flops.sp"
	CtrDPFlops        = "flops.dp"
	CtrInstrs         = "instrs"
	CtrEnergyJ        = "energy.j"

	// Fault-injection and resilience counters (see internal/fault). Each
	// injected fault also increments a per-kind counter named
	// CtrFaultPrefix + kind ("fault.launch-fail", "fault.hang", ...).
	CtrFaultNs       = "fault.ns"              // virtual time lost to faults + recovery
	CtrRetries       = "resilience.retries"    // kernel relaunch attempts
	CtrBackoffNs     = "resilience.backoff.ns" // virtual time spent backing off
	CtrWatchdogKills = "resilience.watchdog"   // hung kernels killed
	CtrFallbacks     = "resilience.fallbacks"  // launches rerouted to the host CPU
	CtrRetransmits   = "resilience.retransmit" // CRC-failed transfers resent
	CtrSDCRedos      = "resilience.sdc.redos"  // whole-run redos on checksum mismatch

	// Co-execution scheduler counters (see internal/sched): published per
	// split launch so a trace capture shows how the iteration space was
	// carved between the host CPU and the accelerator.
	CtrSchedSplits      = "sched.splits"       // launches split across both devices
	CtrSchedChunks      = "sched.chunks"       // chunks booked (both devices)
	CtrSchedHostItems   = "sched.host.items"   // work items run on the host CPU
	CtrSchedAccelItems  = "sched.accel.items"  // work items run on the accelerator
	CtrSchedHostNs      = "sched.host.ns"      // host queue busy time
	CtrSchedAccelNs     = "sched.accel.ns"     // accelerator queue busy time
	CtrSchedImbalanceNs = "sched.imbalance.ns" // |host busy - accel busy| per split
	CtrSchedMigrated    = "sched.migrated"     // chunks migrated host-ward on device loss

	// DAG-scheduler counters (see internal/sched's DagPlanner): published
	// once per DAG launch so a trace capture shows how a multi-kernel
	// workload was spread across the two devices.
	CtrDagLaunches     = "sched.dag.launches"      // DAG workloads planned
	CtrDagKernels      = "sched.dag.kernels"       // kernels booked (both devices)
	CtrDagEdges        = "sched.dag.edges"         // dependency edges honored
	CtrDagHostKernels  = "sched.dag.host.kernels"  // kernels run on the host CPU
	CtrDagAccelKernels = "sched.dag.accel.kernels" // kernels run on the accelerator
	CtrDagRebooked     = "sched.dag.rebooked"      // kernels rebooked host-ward on device loss
	CtrDagIdleNs       = "sched.dag.idle.ns"       // dependency-wait gaps on both queues

	// Workload-interpreter counters (see internal/workload): published once
	// per executed spec so a capture shows what a declarative workload cost
	// beyond its kernels.
	CtrWorkloadRuns       = "workload.runs"        // specs executed
	CtrWorkloadKernels    = "workload.kernels"     // kernel launches across all iterations
	CtrWorkloadTransfers  = "workload.transfers"   // staging copies priced by the strategy
	CtrWorkloadMovedBytes = "workload.moved.bytes" // bytes those copies moved

	// Service-plane counters (see internal/service): hetbenchd publishes
	// these to its own registry, one increment per request-path event, so
	// /metricz exposes admission, cache and failure behavior without
	// touching any experiment capture.
	CtrServiceRequests       = "service.requests"        // requests admitted to Do
	CtrServiceCacheHits      = "service.cache.hits"      // served from the result cache
	CtrServiceCacheMisses    = "service.cache.misses"    // led a fresh run
	CtrServiceCacheEvictions = "service.cache.evictions" // entries dropped for space
	CtrServiceDedupJoined    = "service.dedup.joined"    // joined an identical in-flight run
	CtrServiceShed           = "service.shed"            // rejected 429 by the admission queue
	CtrServiceCanceled       = "service.canceled"        // abandoned by their client first
	CtrServiceErrors         = "service.errors"          // runs that returned an error
	CtrServiceDegraded       = "service.degraded"        // runs degraded by a cell panic

	// Fleet-simulation counters (see internal/fleet): published once per
	// cluster run so a trace capture shows how the job stream moved
	// through the simulated fleet.
	CtrFleetSubmitted  = "fleet.jobs.submitted" // jobs offered to the cluster
	CtrFleetCompleted  = "fleet.jobs.completed" // jobs that finished service
	CtrFleetMigrated   = "fleet.jobs.migrated"  // jobs rebooked after a node loss
	CtrFleetShed       = "fleet.jobs.shed"      // jobs rejected by full/lost nodes
	CtrFleetNodeLosses = "fleet.node.losses"    // device-loss windows opened
	CtrFleetBusyNs     = "fleet.node.busy.ns"   // summed per-node busy time
	CtrFleetWastedNs   = "fleet.node.wasted.ns" // partial executions lost to migration
)

// CtrFaultPrefix prefixes the per-kind injected-fault counters.
const CtrFaultPrefix = "fault."

// Registry is a concurrent map of monotonically-accumulating counters,
// last-write-wins gauges and log-bucketed histograms. The zero value is
// ready to use.
type Registry struct {
	mu     sync.Mutex
	c      map[string]float64
	gauges map[string]float64
	hists  map[string]*Histogram
}

// Add accumulates v into the named counter.
func (r *Registry) Add(name string, v float64) {
	r.mu.Lock()
	if r.c == nil {
		r.c = make(map[string]float64)
	}
	r.c[name] += v
	r.mu.Unlock()
}

// Get returns the named counter's current total (0 if never written).
func (r *Registry) Get(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.c[name]
}

// SetGauge records a point-in-time value (e.g. an active clock).
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	if r.gauges == nil {
		r.gauges = make(map[string]float64)
	}
	r.gauges[name] = v
	r.mu.Unlock()
}

// Gauge returns the named gauge's last value.
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Observe adds one value to the named histogram, creating it on first
// use. Histogram names live in the "hist." namespace (see the Hist*
// constants); hetlint's counterkey analyzer enforces the contract.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		if r.hists == nil {
			r.hists = make(map[string]*Histogram)
		}
		h = &Histogram{}
		r.hists[name] = h
	}
	h.Observe(v)
	r.mu.Unlock()
}

// Hist returns a copy of the named histogram, or nil if nothing was ever
// observed under that name.
func (r *Registry) Hist(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		return nil
	}
	return h.Clone()
}

// HistNames returns the histogram names in sorted order.
func (r *Registry) HistNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Histograms returns a deep copy of all histograms.
func (r *Registry) Histograms() map[string]*Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		out[k] = h.Clone()
	}
	return out
}

// Merge folds another registry into r: counters accumulate, gauges take
// the source's last value, histogram buckets add. Merging per-cell
// registries into the run-wide one in a fixed cell order yields
// bit-identical totals at any worker count, because each counter's
// additions happen in the same sequence.
func (r *Registry) Merge(src *Registry) {
	if src == nil || src == r {
		return
	}
	src.mu.Lock()
	counters := make(map[string]float64, len(src.c))
	for k, v := range src.c {
		counters[k] = v
	}
	gauges := make(map[string]float64, len(src.gauges))
	for k, v := range src.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for k, h := range src.hists {
		hists[k] = h.Clone()
	}
	src.mu.Unlock()
	r.mu.Lock()
	if r.c == nil && len(counters) > 0 {
		r.c = make(map[string]float64, len(counters))
	}
	for k, v := range counters {
		r.c[k] += v
	}
	if r.gauges == nil && len(gauges) > 0 {
		r.gauges = make(map[string]float64, len(gauges))
	}
	for k, v := range gauges {
		r.gauges[k] = v
	}
	if r.hists == nil && len(hists) > 0 {
		r.hists = make(map[string]*Histogram, len(hists))
	}
	for k, h := range hists {
		dst := r.hists[k]
		if dst == nil {
			r.hists[k] = h
			continue
		}
		dst.Merge(h)
	}
	r.mu.Unlock()
}

// Snapshot returns a copy of all counters.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.c))
	for k, v := range r.c {
		out[k] = v
	}
	return out
}

// Names returns the counter names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.c))
	for k := range r.c {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Reset clears all counters, gauges and histograms.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.c, r.gauges, r.hists = nil, nil, nil
	r.mu.Unlock()
}
