// Package trace is the structured observability layer: hierarchical spans
// over the simulator's virtual clocks plus a run-wide counter registry.
//
// The simulated Machine emits kernel/transfer spans natively; applications
// and the harness add run/iteration/phase spans around them, producing the
// hierarchy experiment → app run → iteration → kernel/transfer. Spans carry
// the attributes the paper's analyses need (device, bound resource, bytes,
// wavefronts) and export to Chrome trace_event JSON (Perfetto /
// chrome://tracing), CSV, and the ASCII timeline in internal/report.
//
// A Tracer is safe for concurrent use: span IDs are allocated atomically
// and emission appends under one mutex, so kernels launched from multiple
// goroutines (the MPI+X ranks, the concurrent-clock tests) record cleanly
// under -race. When no tracer is attached the simulator's hot paths pay a
// single nil check.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a span in the hierarchy.
type Kind string

// Span kinds, outermost first.
const (
	KindExperiment Kind = "experiment"
	KindRun        Kind = "run"
	KindIteration  Kind = "iteration"
	KindPhase      Kind = "phase"
	KindKernel     Kind = "kernel"
	KindTransfer   Kind = "transfer"
	KindBarrier    Kind = "barrier"
	// KindFault marks virtual time lost to an injected fault or its
	// recovery (failed launch, watchdog wait, backoff, retransmission).
	KindFault Kind = "fault"
)

// Track names used by the simulator. Each machine (process) renders these
// as separate virtual-clock rows, so kernel/transfer overlap is visible.
const (
	TrackPhases      = "phases"
	TrackHost        = "host"
	TrackAccelerator = "accelerator"
	TrackPCIe        = "pcie"
)

// Span is one completed operation or phase on a virtual-clock track.
// Zero-valued attribute fields mean "not applicable" and are omitted by
// the exporters.
type Span struct {
	ID     uint64
	Parent uint64 // 0 = root
	Proc   int    // index of the emitting process (machine), see Processes
	Track  string
	Name   string
	Kind   Kind

	StartNs float64
	DurNs   float64

	// Attributes.
	Device     string // device the operation ran on
	Bound      string // limiting resource for kernels ("alu","mem","lds","issue","host")
	Dir        string // transfer direction ("h2d","d2h")
	Bytes      int64  // transfer payload
	Items      int    // kernel global work size
	Wavefronts int    // whole wavefronts the launch occupied
}

// EndNs returns the span's end time on its virtual clock.
func (s Span) EndNs() float64 { return s.StartNs + s.DurNs }

// Tracer collects spans and counters for one traced run (possibly spanning
// several machines, each registered as a process).
type Tracer struct {
	nextID atomic.Uint64

	mu    sync.Mutex
	spans []Span
	procs []string

	metrics Registry
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// NewSpanID allocates a unique span ID (IDs start at 1; 0 means "no
// parent").
func (t *Tracer) NewSpanID() uint64 { return t.nextID.Add(1) }

// RegisterProcess names a virtual-clock group (one simulated machine) and
// returns its index. Processes become Chrome-trace pids.
func (t *Tracer) RegisterProcess(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procs = append(t.procs, name)
	return len(t.procs) - 1
}

// Processes returns the registered process names in index order.
func (t *Tracer) Processes() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.procs))
	copy(out, t.procs)
	return out
}

// Emit records a completed span, assigning an ID if the caller left it 0.
func (t *Tracer) Emit(s Span) {
	if s.ID == 0 {
		s.ID = t.NewSpanID()
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Len returns the number of spans emitted so far. It doubles as a
// watermark for SpansSince (the Machine's event-log view uses it to scope
// spans to the current run).
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of all emitted spans in emission order (children
// precede the parents that enclose them, since parents emit at End).
func (t *Tracer) Spans() []Span { return t.SpansSince(0) }

// SpansSince returns a copy of the spans emitted at or after the given
// watermark (a previous Len result).
func (t *Tracer) SpansSince(mark int) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if mark < 0 {
		mark = 0
	}
	if mark > len(t.spans) {
		mark = len(t.spans)
	}
	out := make([]Span, len(t.spans)-mark)
	copy(out, t.spans[mark:])
	return out
}

// Metrics returns the tracer's counter registry.
func (t *Tracer) Metrics() *Registry { return &t.metrics }

// Fold appends a child tracer's processes, spans and counters into t,
// remapping process indices and span IDs so identities stay unique in the
// combined trace. This is how the parallel experiment runner keeps traced
// runs deterministic: every concurrently-executing cell records into its
// own private tracer, and the cells are folded into the run-wide tracer
// in cell order after all of them finish — so the merged span set is
// identical at any worker count. Fold assumes every child span ID was
// allocated by the child's NewSpanID (the Machine's emission path); a
// span carrying a hand-picked ID above the child's high-water mark could
// collide after remapping.
func (t *Tracer) Fold(child *Tracer) {
	if child == nil || child == t {
		return
	}
	spans := child.Spans()
	procs := child.Processes()
	// Reserve the child's whole ID range atomically, then shift every
	// child ID into it (parent 0 means "root" and stays 0).
	used := child.nextID.Load()
	offset := t.nextID.Add(used) - used
	t.mu.Lock()
	procBase := len(t.procs)
	t.procs = append(t.procs, procs...)
	for _, s := range spans {
		s.ID += offset
		if s.Parent != 0 {
			s.Parent += offset
		}
		s.Proc += procBase
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
	t.metrics.Merge(child.Metrics())
}

// ByStart returns the spans sorted by (proc, track, start, -duration):
// the stable timeline order the exporters and renderers use, with
// enclosing spans ahead of the children that share their start time.
func ByStart(spans []Span) []Span {
	out := make([]Span, len(spans))
	copy(out, spans)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.StartNs != b.StartNs {
			return a.StartNs < b.StartNs
		}
		return a.DurNs > b.DurNs
	})
	return out
}
