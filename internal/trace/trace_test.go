package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// Concurrent emitters must not lose or corrupt spans (run under -race).
func TestConcurrentEmit(t *testing.T) {
	tr := New()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			proc := tr.RegisterProcess(fmt.Sprintf("machine-%d", w))
			for i := 0; i < per; i++ {
				tr.Emit(Span{
					Proc: proc, Track: TrackAccelerator, Kind: KindKernel,
					Name: fmt.Sprintf("k%d", i), StartNs: float64(i), DurNs: 1,
				})
				tr.Metrics().Add(CtrKernelLaunches, 1)
			}
		}(w)
	}
	wg.Wait()

	if got := tr.Len(); got != workers*per {
		t.Errorf("spans = %d, want %d", got, workers*per)
	}
	if got := tr.Metrics().Get(CtrKernelLaunches); got != workers*per {
		t.Errorf("kernel.launches = %g, want %d", got, workers*per)
	}
	ids := map[uint64]bool{}
	for _, s := range tr.Spans() {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
	}
	if len(tr.Processes()) != workers {
		t.Errorf("processes = %d, want %d", len(tr.Processes()), workers)
	}
}

func TestSpansSince(t *testing.T) {
	tr := New()
	tr.Emit(Span{Name: "a"})
	mark := tr.Len()
	tr.Emit(Span{Name: "b"})
	got := tr.SpansSince(mark)
	if len(got) != 1 || got[0].Name != "b" {
		t.Errorf("SpansSince(%d) = %+v", mark, got)
	}
}

// WriteChrome must produce valid JSON whose "X" events have monotone
// timestamps within every (pid, tid) track.
func TestWriteChromeMonotone(t *testing.T) {
	tr := New()
	p0 := tr.RegisterProcess("APU")
	p1 := tr.RegisterProcess("R9 280X")
	// Emit deliberately out of order.
	for i := 5; i >= 0; i-- {
		tr.Emit(Span{Proc: p0, Track: TrackAccelerator, Kind: KindKernel,
			Name: fmt.Sprintf("k%d", i), StartNs: float64(i * 1000), DurNs: 500, Device: "gpu", Items: 64})
		tr.Emit(Span{Proc: p1, Track: TrackPCIe, Kind: KindTransfer,
			Name: "buf", StartNs: float64(i * 2000), DurNs: 100, Dir: "h2d", Bytes: 1 << 20})
	}

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}

	lastTs := map[[2]int]float64{}
	var xEvents, metaNames int
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" || e.Name == "thread_name" {
				metaNames++
			}
		case "X":
			xEvents++
			key := [2]int{e.Pid, e.Tid}
			if prev, ok := lastTs[key]; ok && e.Ts < prev {
				t.Fatalf("track %v: ts %.1f after %.1f", key, e.Ts, prev)
			}
			lastTs[key] = e.Ts
			if e.Dur < 0 {
				t.Errorf("negative dur on %q", e.Name)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if xEvents != 12 {
		t.Errorf("X events = %d, want 12", xEvents)
	}
	if metaNames < 4 { // 2 process names + 2 thread names
		t.Errorf("metadata events = %d, want >= 4", metaNames)
	}
	// Attribute args survive the round trip.
	found := false
	for _, e := range out.TraceEvents {
		if e.Ph == "X" && e.Name == "buf" {
			found = true
			if e.Args["dir"] != "h2d" || e.Args["bytes"] != float64(1<<20) {
				t.Errorf("transfer args = %v", e.Args)
			}
		}
	}
	if !found {
		t.Error("transfer event missing")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New()
	p := tr.RegisterProcess("m,0") // comma forces quoting
	tr.Emit(Span{Proc: p, Track: TrackHost, Kind: KindKernel, Name: "k", StartNs: 10, DurNs: 5})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{"proc,track,kind,name", `"m,0"`, "host,kernel,k,10.0,5.0"} {
		if !bytes.Contains([]byte(got), []byte(want)) {
			t.Errorf("CSV missing %q:\n%s", want, got)
		}
	}
}

func TestAggregate(t *testing.T) {
	spans := []Span{
		{Kind: KindKernel, Name: "a", DurNs: 10, Bound: "mem"},
		{Kind: KindKernel, Name: "b", DurNs: 30},
		{Kind: KindKernel, Name: "a", DurNs: 15, Bound: "mem"},
		{Kind: KindTransfer, Name: "t", DurNs: 100, Bytes: 4096},
	}
	kernels := Aggregate(spans, KindKernel)
	if len(kernels) != 2 || kernels[0].Name != "b" || kernels[1].Calls != 2 || kernels[1].TotalNs != 25 {
		t.Errorf("kernel aggregate = %+v", kernels)
	}
	if kernels[1].Bound != "mem" {
		t.Errorf("bound not carried: %+v", kernels[1])
	}
	transfers := Aggregate(spans, KindTransfer)
	if len(transfers) != 1 || transfers[0].Bytes != 4096 {
		t.Errorf("transfer aggregate = %+v", transfers)
	}
	if got := TotalNs(kernels); got != 55 {
		t.Errorf("TotalNs = %g", got)
	}
	if all := Aggregate(spans); len(all) != 3 {
		t.Errorf("unfiltered aggregate = %+v", all)
	}
}

func TestRegistry(t *testing.T) {
	var r Registry // zero value usable
	r.Add(CtrDRAMBytes, 100)
	r.Add(CtrDRAMBytes, 28)
	r.SetGauge("clock.mhz", 850)
	if r.Get(CtrDRAMBytes) != 128 || r.Gauge("clock.mhz") != 850 {
		t.Errorf("registry: %v", r.Snapshot())
	}
	if names := r.Names(); len(names) != 1 || names[0] != CtrDRAMBytes {
		t.Errorf("names = %v", names)
	}
	r.Reset()
	if r.Get(CtrDRAMBytes) != 0 || len(r.Snapshot()) != 0 {
		t.Error("reset incomplete")
	}
}

// Fold must remap child span IDs, parent links and process indices into
// the destination's namespace while leaving span payloads untouched.
func TestFold(t *testing.T) {
	dst := New()
	dst.RegisterProcess("machine-a")
	rootID := dst.NewSpanID()
	dst.Emit(Span{ID: rootID, Name: "dst-root", Kind: KindRun})

	child := New()
	proc := child.RegisterProcess("machine-b")
	parent := child.NewSpanID()
	kid := child.NewSpanID()
	child.Emit(Span{ID: kid, Parent: parent, Proc: proc, Name: "kernel", Kind: KindKernel, DurNs: 5})
	child.Emit(Span{ID: parent, Proc: proc, Name: "run", Kind: KindRun, DurNs: 9})
	child.Metrics().Add(CtrKernelLaunches, 1)
	child.Metrics().SetGauge("clock.mhz", 925)

	dst.Fold(child)

	procs := dst.Processes()
	if len(procs) != 2 || procs[1] != "machine-b" {
		t.Fatalf("processes after fold: %v", procs)
	}
	spans := dst.Spans()
	if len(spans) != 3 {
		t.Fatalf("span count after fold: %d", len(spans))
	}
	fk, fr := spans[1], spans[2]
	if fk.Name != "kernel" || fr.Name != "run" {
		t.Fatalf("folded spans out of order: %+v", spans)
	}
	if fk.ID == kid || fk.ID == rootID || fk.Parent != fr.ID {
		t.Errorf("IDs not remapped consistently: kernel %+v run %+v", fk, fr)
	}
	if fk.Proc != 1 || fr.Proc != 1 {
		t.Errorf("proc indices not shifted: kernel proc %d, run proc %d", fk.Proc, fr.Proc)
	}
	if fk.DurNs != 5 || fr.DurNs != 9 {
		t.Errorf("span payloads changed: %+v %+v", fk, fr)
	}
	// Fresh IDs allocated after the fold must not collide with folded ones.
	next := dst.NewSpanID()
	if next == fk.ID || next == fr.ID || next == rootID {
		t.Errorf("NewSpanID %d collides with folded IDs", next)
	}
	if dst.Metrics().Get(CtrKernelLaunches) != 1 || dst.Metrics().Gauge("clock.mhz") != 925 {
		t.Error("metrics not merged on fold")
	}

	// Folding nil or self is a no-op.
	dst.Fold(nil)
	dst.Fold(dst)
	if dst.Len() != 3 {
		t.Errorf("nil/self fold changed span count to %d", dst.Len())
	}
}

// Merge accumulates counters and overwrites gauges; merged-in-order
// registries are bit-identical regardless of source construction order.
func TestRegistryMerge(t *testing.T) {
	var a, b, dst Registry
	a.Add(CtrKernelNs, 100)
	a.SetGauge("g", 1)
	b.Add(CtrKernelNs, 28)
	b.Add(CtrTransferNs, 7)
	b.SetGauge("g", 2)
	dst.Add(CtrKernelNs, 1)
	dst.Merge(&a)
	dst.Merge(&b)
	if got := dst.Get(CtrKernelNs); got != 129 {
		t.Errorf("merged counter = %g, want 129", got)
	}
	if got := dst.Get(CtrTransferNs); got != 7 {
		t.Errorf("merged counter = %g, want 7", got)
	}
	if got := dst.Gauge("g"); got != 2 {
		t.Errorf("merged gauge = %g, want last-writer 2", got)
	}
	dst.Merge(nil)
	dst.Merge(&dst)
	if dst.Get(CtrKernelNs) != 129 {
		t.Error("nil/self merge changed counters")
	}
}
