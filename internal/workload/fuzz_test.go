package workload

import (
	"testing"
)

// FuzzWorkloadSpec throws arbitrary bytes at the strict parser and checks
// the contract: it never panics, and anything it accepts is a spec whose
// compilation succeeds with a complete, dependency-respecting topological
// order. The corpus seeds the interesting rejection classes — a valid
// spec, an After cycle, a self-edge, a duplicate kernel name and
// truncated JSON — so mutation starts from both sides of the boundary.
func FuzzWorkloadSpec(f *testing.F) {
	f.Add([]byte(validSpec))
	f.Add([]byte(`{"name":"cycle","kernels":[
		{"name":"a","class":"streaming","items":1,"after":["b"]},
		{"name":"b","class":"streaming","items":1,"after":["a"]}]}`))
	f.Add([]byte(`{"name":"self","kernels":[
		{"name":"a","class":"streaming","items":1,"after":["a"]}]}`))
	f.Add([]byte(`{"name":"dup","kernels":[
		{"name":"a","class":"streaming","items":1},
		{"name":"a","class":"streaming","items":1}]}`))
	f.Add([]byte(validSpec[:len(validSpec)/3]))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// Parse already compiled once; compiling again must agree and
		// yield a valid schedule.
		p, err := s.Compile()
		if err != nil {
			t.Fatalf("Parse accepted a spec Compile rejects: %v", err)
		}
		n := len(s.Kernels)
		if len(p.Order) != n {
			t.Fatalf("topo order covers %d of %d kernels", len(p.Order), n)
		}
		pos := make([]int, n)
		seen := make([]bool, n)
		for i, k := range p.Order {
			if k < 0 || k >= n || seen[k] {
				t.Fatalf("topo order %v is not a permutation", p.Order)
			}
			seen[k] = true
			pos[k] = i
		}
		for k, deps := range p.Deps {
			for _, d := range deps {
				if d == k {
					t.Fatalf("kernel %d depends on itself", k)
				}
				if pos[d] >= pos[k] {
					t.Fatalf("topo order %v places dep %d after kernel %d", p.Order, d, k)
				}
			}
		}
	})
}
