package workload

// The interpreter: executing a compiled Program through sim.Machine under
// one of the paper's GPU programming models. The model choice sets two
// things — the compiled kernel quality (modelapi.ProfileOn) and the
// data-movement strategy priced on every dependency edge that crosses the
// host/accelerator boundary:
//
//   - OpenCL (ExplicitTransfers): the programmer stages exactly what each
//     kernel reads before it runs and nothing else; written buffers come
//     back once, at the end of the run.
//   - C++ AMP (ViewSyncTransfers): array_view demand sync with the
//     conservative write-back the model's runtime performs — every view a
//     kernel captures is assumed written, so touching a buffer on one
//     device invalidates the other's copy even for reads.
//   - OpenACC (RegionCopyTransfers): the naive no-data-region port — every
//     kernels region conservatively copies its arrays in on entry and out
//     on exit, every iteration. (Modeling `acc data` regions that hoist
//     these copies is future work; this is the paper's out-of-the-box
//     OpenACC behavior.)
//
// On unified-memory machines no copies exist at all (the strategy
// degenerates to NoTransfers), which is exactly the paper's APU argument.
//
// Execution is either serialized — every kernel in deterministic topo
// order on one device, the paper's one-kernel-at-a-time baseline — or
// handed to a sched.DagPlanner that overlaps independent kernels on both
// devices. Staging follows the kernel to whichever device the planner
// picks; the copies book on the destination device's in-order queue ahead
// of the kernel. OpenACC region-exit copies book right after their kernel
// on the same queue; a host-side consumer keys off the kernel's finish
// (the region's asynchronous drain), a small optimism the serial path does
// not share.

import (
	"fmt"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sched"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// Options selects how a Program executes.
type Options struct {
	// Model is the programming model compiling the kernels and pricing
	// the staging (one of modelapi.All()).
	Model modelapi.Name
	// Planner, when non-nil, co-schedules the DAG across both devices.
	// Nil runs the serialized baseline: every kernel in topo order on the
	// accelerator (host-pinned kernels excepted).
	Planner *sched.DagPlanner
	// Iterations overrides the spec's outer-loop count when positive.
	Iterations int
}

// Result summarizes one executed workload.
type Result struct {
	ElapsedNs  float64 // virtual time the workload added to the clock
	KernelNs   float64 // kernel-path share of that time
	TransferNs float64 // serial-path staging share (DAG staging lands in ElapsedNs via the makespan)

	Kernels      int // kernel launches across all iterations
	HostKernels  int // of those, run on the host CPU
	AccelKernels int // of those, run on the accelerator
	Rebooked     int // kernels rebooked host-ward by a device-loss window

	Transfers  int     // staging copies the strategy priced
	MovedBytes int64   // bytes those copies moved
	IdleNs     float64 // dependency-wait gaps on the DAG queues
}

// Execute runs the program on the machine from its current virtual clock
// (it does not reset the clock, so an open device-loss window survives
// into the run). Deterministic: equal machine, program and options replay
// the same schedule, spans and counters bit for bit.
func Execute(m *sim.Machine, prog *Program, opt Options) Result {
	accelProf := modelapi.ProfileOn(opt.Model, m.Unified())
	hostProf := modelapi.ProfileFor(modelapi.OpenMP)
	n := len(prog.Spec.Kernels)

	accelCost := make([]timing.KernelCost, n)
	hostCost := make([]timing.KernelCost, n)
	used := make([][]int, n) // reads ∪ writes, declaration order
	for k := 0; k < n; k++ {
		spec := prog.kernelSpec(k)
		items := prog.launchItems(k)
		per := prog.perItem(k)
		accelCost[k] = spec.Cost(accelProf, items, per)
		hostCost[k] = spec.Cost(hostProf, items, per)
		seen := map[int]bool{}
		for _, b := range prog.Reads[k] {
			seen[b] = true
			used[k] = append(used[k], b)
		}
		for _, b := range prog.Writes[k] {
			if !seen[b] {
				used[k] = append(used[k], b)
			}
		}
	}

	iters := opt.Iterations
	if iters <= 0 {
		iters = prog.Spec.iterations()
	}

	ex := &interp{
		m: m, prog: prog, used: used,
		accelCost: accelCost, hostCost: hostCost,
		strategy:  accelProf.Strategy,
		hostValid: make([]bool, len(prog.Spec.Buffers)),
		devValid:  make([]bool, len(prog.Spec.Buffers)),
	}
	if m.Unified() {
		// Shared physical memory: both sides always see the latest copy
		// and no staging exists to price.
		ex.strategy = modelapi.NoTransfers
	}
	for b := range ex.hostValid {
		ex.hostValid[b] = true // inputs materialize on the host
	}

	elapsed0, kernel0, transfer0 := m.ElapsedNs(), m.KernelNs(), m.TransferNs()
	run := m.StartRun(prog.Spec.Name + "/" + string(opt.Model))
	for it := 0; it < iters; it++ {
		iter := m.StartIteration(it)
		if opt.Planner == nil {
			ex.serialIteration()
		} else {
			ex.dagIteration(opt.Planner)
		}
		iter.End()
	}
	ex.finalSync()
	run.End()

	ex.res.Kernels = iters * n
	ex.res.ElapsedNs = m.ElapsedNs() - elapsed0
	ex.res.KernelNs = m.KernelNs() - kernel0
	ex.res.TransferNs = m.TransferNs() - transfer0

	if tr := m.Tracer(); tr != nil {
		reg := tr.Metrics()
		reg.Add(trace.CtrWorkloadRuns, 1)
		reg.Add(trace.CtrWorkloadKernels, float64(ex.res.Kernels))
		reg.Add(trace.CtrWorkloadTransfers, float64(ex.res.Transfers))
		reg.Add(trace.CtrWorkloadMovedBytes, float64(ex.res.MovedBytes))
	}
	return ex.res
}

// interp is one execution's mutable state: buffer residency on the two
// devices, plus the running tallies.
type interp struct {
	m    *sim.Machine
	prog *Program
	used [][]int

	accelCost, hostCost []timing.KernelCost

	strategy  modelapi.TransferStrategy
	hostValid []bool
	devValid  []bool

	res Result
}

// xfer is one staging copy the strategy decided to price.
type xfer struct {
	kind sim.EventKind
	buf  int
}

// pre returns the copies kernel k needs before running on t and marks
// their destinations valid (booking always follows immediately).
func (ex *interp) pre(k int, t sim.Target) []xfer {
	var out []xfer
	h2d := func(b int) {
		if !ex.devValid[b] {
			out = append(out, xfer{sim.EvHostToDevice, b})
			ex.devValid[b] = true
		}
	}
	d2h := func(b int) {
		if !ex.hostValid[b] {
			out = append(out, xfer{sim.EvDeviceToHost, b})
			ex.hostValid[b] = true
		}
	}
	switch ex.strategy {
	case modelapi.ExplicitTransfers:
		// The programmer stages exactly what the kernel reads.
		for _, b := range ex.prog.Reads[k] {
			if t == sim.OnAccelerator {
				h2d(b)
			} else {
				d2h(b)
			}
		}
	case modelapi.ViewSyncTransfers:
		// Every captured view syncs to the executing device — including
		// write-only views, which the runtime cannot prove unread.
		for _, b := range ex.used[k] {
			if t == sim.OnAccelerator {
				h2d(b)
			} else {
				d2h(b)
			}
		}
	case modelapi.RegionCopyTransfers:
		// Region entry copies everything in unconditionally; the exit
		// copy-out (see exit) keeps the host fresh, so host kernels and
		// repeat iterations never find device-resident data.
		if t == sim.OnAccelerator {
			for _, b := range ex.used[k] {
				out = append(out, xfer{sim.EvHostToDevice, b})
			}
		}
	}
	return out
}

// exit returns the copies kernel k books right after running on t
// (OpenACC's region-exit copy-out).
func (ex *interp) exit(k int, t sim.Target) []xfer {
	if ex.strategy != modelapi.RegionCopyTransfers || t != sim.OnAccelerator {
		return nil
	}
	out := make([]xfer, 0, len(ex.used[k]))
	for _, b := range ex.used[k] {
		out = append(out, xfer{sim.EvDeviceToHost, b})
	}
	return out
}

// post advances residency past kernel k's writes on t.
func (ex *interp) post(k int, t sim.Target) {
	switch ex.strategy {
	case modelapi.ExplicitTransfers:
		for _, b := range ex.prog.Writes[k] {
			ex.hostValid[b] = t == sim.OnHost
			ex.devValid[b] = t == sim.OnAccelerator
		}
	case modelapi.ViewSyncTransfers:
		// Conservative write-back: every captured view is assumed
		// written, so the other device's copy is stale.
		for _, b := range ex.used[k] {
			ex.hostValid[b] = t == sim.OnHost
			ex.devValid[b] = t == sim.OnAccelerator
		}
	case modelapi.RegionCopyTransfers:
		// Entry/exit copies bracket every region; the host copy is always
		// fresh by the time anyone looks.
	}
}

// xferName labels one staging copy's span.
func (ex *interp) xferName(k int, x xfer) string {
	return ex.prog.Spec.Kernels[k].Name + ":" + ex.prog.Spec.Buffers[x.buf].Name
}

// serialIteration runs one pass of the DAG in topo order, one kernel at a
// time: the single-device baseline every speedup is measured against.
// Placement constraints are still honored (a host-pinned kernel runs on
// the host), but nothing overlaps.
func (ex *interp) serialIteration() {
	for _, k := range ex.prog.Order {
		t := sim.OnAccelerator
		if ex.prog.Place[k] == sched.PlaceHost {
			t = sim.OnHost
		}
		for _, x := range ex.pre(k, t) {
			ex.bookSerial(k, x)
		}
		cost := ex.accelCost[k]
		if t == sim.OnHost {
			cost = ex.hostCost[k]
			ex.res.HostKernels++
		} else {
			ex.res.AccelKernels++
		}
		ex.m.LaunchKernel(t, ex.prog.Spec.Kernels[k].Name, cost)
		for _, x := range ex.exit(k, t) {
			ex.bookSerial(k, x)
		}
		ex.post(k, t)
	}
}

// bookSerial pays one staging copy on the machine's serial transfer path.
func (ex *interp) bookSerial(k int, x xfer) {
	bytes := ex.prog.Spec.Buffers[x.buf].Bytes
	if x.kind == sim.EvHostToDevice {
		ex.m.TransferToDevice(ex.xferName(k, x), bytes)
	} else {
		ex.m.TransferFromDevice(ex.xferName(k, x), bytes)
	}
	ex.res.Transfers++
	ex.res.MovedBytes += bytes
}

// dagIteration hands one pass of the DAG to the planner. The planning
// loop is sequential and books kernels in a valid topological order, so
// the residency state machine advances exactly as it would under the
// serial path — only the virtual-time bookings overlap.
func (ex *interp) dagIteration(planner *sched.DagPlanner) {
	n := len(ex.prog.Spec.Kernels)
	kernels := make([]sched.DagKernel, n)
	for k := 0; k < n; k++ {
		kernels[k] = sched.DagKernel{
			Name:  ex.prog.Spec.Kernels[k].Name,
			Accel: ex.accelCost[k],
			Host:  ex.hostCost[k],
			Deps:  ex.prog.Deps[k],
			Place: ex.prog.Place[k],
		}
	}
	dr := planner.Run(ex.m, sched.DagLaunch{
		Name:    ex.prog.Spec.Name,
		Kernels: kernels,
		Stage: func(q *sim.DagQueue, k int, t sim.Target, readyNs float64) float64 {
			for _, x := range ex.pre(k, t) {
				readyNs = ex.bookQueued(q, t, k, x, readyNs)
			}
			return readyNs
		},
		OnKernel: func(q *sim.DagQueue, k int, t sim.Target, rebooked bool) {
			// Region-exit copies land at the device queue's tail, right
			// behind the kernel that just booked there.
			for _, x := range ex.exit(k, t) {
				ex.bookQueued(q, t, k, x, 0)
			}
			ex.post(k, t)
		},
	})
	ex.res.HostKernels += dr.Stats.HostKernels
	ex.res.AccelKernels += dr.Stats.AccelKernels
	ex.res.Rebooked += dr.Stats.Rebooked
	ex.res.IdleNs += dr.Stats.IdleNs
}

// bookQueued pays one staging copy on a DAG device queue and returns its
// completion time.
func (ex *interp) bookQueued(q *sim.DagQueue, t sim.Target, k int, x xfer, readyNs float64) float64 {
	bytes := ex.prog.Spec.Buffers[x.buf].Bytes
	done := q.RunTransfer(t, x.kind, ex.xferName(k, x), bytes, readyNs)
	ex.res.Transfers++
	ex.res.MovedBytes += bytes
	return done
}

// finalSync brings the result buffers home at the end of the run: the
// OpenCL program's final clEnqueueReadBuffer calls, or the C++ AMP
// synchronize() on each view the host examines. Only terminal outputs
// (Program.Output) come back — intermediates stay wherever they died.
// OpenACC regions already copied out at every exit, and unified machines
// never went stale.
func (ex *interp) finalSync() {
	for b := range ex.hostValid {
		if ex.hostValid[b] || !ex.prog.Output[b] {
			continue
		}
		ex.m.TransferFromDevice("sync:"+ex.prog.Spec.Buffers[b].Name, ex.prog.Spec.Buffers[b].Bytes)
		ex.res.Transfers++
		ex.res.MovedBytes += ex.prog.Spec.Buffers[b].Bytes
		ex.hostValid[b] = true
	}
}

// String renders the options for labels ("OpenCL/dynamic", "OpenACC/serial").
func (o Options) String() string {
	pol := "serial"
	if o.Planner != nil {
		pol = fmt.Sprint(o.Planner.Config().Policy)
	}
	return string(o.Model) + "/" + pol
}
