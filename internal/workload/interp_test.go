package workload

import (
	"testing"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sched"
	"hetbench/internal/sim"
)

func mustProgram(t *testing.T, src string) *Program {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStagingPerStrategy pins the number of priced copies for the diamond
// on the dGPU, one model at a time — the per-edge staging semantics the
// interpreter exists to model.
func TestStagingPerStrategy(t *testing.T) {
	tests := []struct {
		model     modelapi.Name
		transfers int
	}{
		// OpenCL: in once (left stages `in`, right finds it resident, join
		// reads device-fresh a and b), out once (final read of `out`);
		// a and b never cross the link.
		{modelapi.OpenCL, 2},
		// C++ AMP: every captured view syncs in (in, a, b, out — the
		// runtime cannot prove out unread before join writes it), and the
		// final synchronize brings out home: in,a,b,out in + out back = 5.
		{modelapi.CppAMP, 5},
		// OpenACC region copies: left (in,a ×2) + right (in,b ×2) + join
		// (a,b,out ×2) = 14, re-paid every region.
		{modelapi.OpenACC, 14},
	}
	for _, tc := range tests {
		t.Run(string(tc.model), func(t *testing.T) {
			prog := mustProgram(t, validSpec)
			m := sim.NewDGPU()
			res := Execute(m, prog, Options{Model: tc.model})
			if res.Transfers != tc.transfers {
				t.Errorf("%s priced %d staging copies, want %d", tc.model, res.Transfers, tc.transfers)
			}
			if res.MovedBytes == 0 {
				t.Error("no bytes moved across PCIe")
			}
			if res.Kernels != 3 || res.HostKernels+res.AccelKernels != 3 {
				t.Errorf("kernel accounting off: %+v", res)
			}
		})
	}
}

// TestUnifiedMachineMovesNothing is the APU argument: shared physical
// memory prices no staging under any model.
func TestUnifiedMachineMovesNothing(t *testing.T) {
	for _, model := range modelapi.All() {
		prog := mustProgram(t, validSpec)
		res := Execute(sim.NewAPU(), prog, Options{Model: model})
		if res.Transfers != 0 || res.MovedBytes != 0 {
			t.Errorf("%s moved %d copies / %d bytes on the APU, want none",
				model, res.Transfers, res.MovedBytes)
		}
	}
}

// TestDagBeatsSerial asserts the tentpole claim: co-scheduling the
// diamond's independent branches beats serialized execution on the APU,
// where the two devices share memory and the host branch is free to
// overlap.
func TestDagBeatsSerial(t *testing.T) {
	prog := mustProgram(t, validSpec)
	serial := Execute(sim.NewAPU(), prog, Options{Model: modelapi.OpenCL})
	dag := Execute(sim.NewAPU(), prog, Options{
		Model:   modelapi.OpenCL,
		Planner: sched.NewDag(sched.Config{Policy: sched.Dynamic}),
	})
	if dag.ElapsedNs >= serial.ElapsedNs {
		t.Errorf("DAG schedule (%.0f ns) did not beat serial (%.0f ns)",
			dag.ElapsedNs, serial.ElapsedNs)
	}
	if dag.HostKernels == 0 {
		t.Error("dynamic planner never used the host — nothing overlapped")
	}
}

// TestExecuteDeterministic replays the same options twice on fresh
// machines and demands identical results, serial and DAG.
func TestExecuteDeterministic(t *testing.T) {
	for _, planner := range []bool{false, true} {
		var first Result
		for i := 0; i < 3; i++ {
			prog := mustProgram(t, validSpec)
			opt := Options{Model: modelapi.CppAMP}
			if planner {
				opt.Planner = sched.NewDag(sched.Config{Policy: sched.HGuided})
			}
			res := Execute(sim.NewDGPU(), prog, opt)
			if i == 0 {
				first = res
			} else if res != first {
				t.Fatalf("planner=%v run %d differs: %+v vs %+v", planner, i, res, first)
			}
		}
	}
}

// TestIterationsResidency checks OpenCL residency persists across
// iterations (inputs cross once) while OpenACC re-pays its region copies
// every iteration.
func TestIterationsResidency(t *testing.T) {
	prog := mustProgram(t, validSpec)
	cl3 := Execute(sim.NewDGPU(), prog, Options{Model: modelapi.OpenCL, Iterations: 3})
	// Iteration 1 stages `in` and the final sync returns `out`; iterations
	// 2–3 find everything resident: still 2 copies total.
	if cl3.Transfers != 2 {
		t.Errorf("OpenCL over 3 iterations priced %d copies, want 2", cl3.Transfers)
	}
	prog = mustProgram(t, validSpec)
	acc1 := Execute(sim.NewDGPU(), prog, Options{Model: modelapi.OpenACC, Iterations: 1})
	prog = mustProgram(t, validSpec)
	acc3 := Execute(sim.NewDGPU(), prog, Options{Model: modelapi.OpenACC, Iterations: 3})
	if acc3.Transfers != 3*acc1.Transfers {
		t.Errorf("OpenACC copies did not scale with iterations: %d vs 3×%d",
			acc3.Transfers, acc1.Transfers)
	}
}

// TestHostPinnedKernelStaysHome checks placement constraints survive both
// execution paths.
func TestHostPinnedKernelStaysHome(t *testing.T) {
	src := `{
	  "name": "pinned",
	  "kernels": [
	    {"name": "gpu", "class": "streaming", "items": 1048576, "sp_flops": 8, "load_bytes": 16},
	    {"name": "cpu", "class": "irregular", "items": 64, "device": "host", "after": ["gpu"]}
	  ]
	}`
	for _, planner := range []bool{false, true} {
		prog := mustProgram(t, src)
		opt := Options{Model: modelapi.OpenCL}
		if planner {
			opt.Planner = sched.NewDag(sched.Config{Policy: sched.Static})
		}
		res := Execute(sim.NewDGPU(), prog, opt)
		if res.HostKernels != 1 {
			t.Errorf("planner=%v: host-pinned kernel ran %d times on the host", planner, res.HostKernels)
		}
	}
}
