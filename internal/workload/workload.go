// Package workload defines declarative multi-kernel workload specs: a
// JSON description of an application as a set of kernels with measured
// op/byte counts, working-set buffers, wavefront hints and data
// dependencies forming a DAG, plus HeteroBench-style per-kernel device
// placement. A spec is parsed strictly (unknown fields rejected),
// validated (references, ranges, duplicate names, self-edges, cycles) and
// compiled into a Program: resolved buffer indices, a deduplicated
// dependency graph derived from the buffer dataflow, and a deterministic
// topological order. The interpreter in interp.go executes Programs
// through sim.Machine under any of the three GPU programming models,
// pricing each model's data-movement strategy per dependency edge, either
// serialized on one device or co-scheduled across both by a
// sched.DagPlanner.
//
// New scenarios cost a JSON file, not a Go package (ROADMAP item 2): the
// four shipped specs under specs/ are the first config-defined workloads.
package workload

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sched"
	"hetbench/internal/sim/exec"
)

// Buffer is one named working-set allocation kernels read and write.
type Buffer struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
}

// Kernel is one kernel of the workload: its code-generation class and
// per-item operation counts (the same per-item averages timing.KernelCost
// consumes), the buffers it touches, explicit ordering edges, and an
// optional device constraint.
type Kernel struct {
	Name string `json:"name"`
	// Class is the code-generation difficulty: streaming | regular |
	// irregular (see modelapi.KernelClass).
	Class string `json:"class"`
	// Items is the NDRange size — one work item per element.
	Items int `json:"items"`
	// WavefrontHint, when above 1, pads the launch to a multiple of this
	// many items (the dispatch rounds partially-filled wavefronts up).
	WavefrontHint int `json:"wavefront_hint,omitempty"`

	// Per-item averages, as measured by replaying the kernel through the
	// functional executor (or estimated for synthetic specs).
	SPFlops    float64 `json:"sp_flops,omitempty"`
	DPFlops    float64 `json:"dp_flops,omitempty"`
	LoadBytes  float64 `json:"load_bytes,omitempty"`
	StoreBytes float64 `json:"store_bytes,omitempty"`
	LDSBytes   float64 `json:"lds_bytes,omitempty"`
	Instrs     float64 `json:"instrs,omitempty"`
	// MissRate is the LLC miss rate in [0,1]; Coalesce the wavefront
	// coalescing efficiency in (0,1] (0 defaults to 1).
	MissRate float64 `json:"miss_rate,omitempty"`
	Coalesce float64 `json:"coalesce,omitempty"`

	// Reads and Writes name the buffers the kernel consumes and produces;
	// dependency edges are derived from this dataflow in declaration
	// order (read-after-write, write-after-write, write-after-read).
	Reads  []string `json:"reads,omitempty"`
	Writes []string `json:"writes,omitempty"`
	// After adds explicit ordering edges beyond the dataflow (barriers,
	// side effects the buffer model cannot see).
	After []string `json:"after,omitempty"`
	// Device constrains placement: "any" (default), "host" or "accel" —
	// HeteroBench's per-kernel backend selection.
	Device string `json:"device,omitempty"`
}

// Spec is one declarative workload.
type Spec struct {
	Name  string `json:"name"`
	Title string `json:"title,omitempty"`
	// Iterations is how many times the whole DAG runs (a solver's outer
	// loop); 0 means 1.
	Iterations int      `json:"iterations,omitempty"`
	Buffers    []Buffer `json:"buffers"`
	Kernels    []Kernel `json:"kernels"`
}

// Parse decodes one spec strictly — unknown fields and trailing data are
// errors, so a typo in a config file fails loudly instead of silently
// dropping a constraint — and compiles it, so every returned Spec is
// valid and acyclic.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("workload: trailing data after spec %q", s.Name)
	}
	if _, err := s.Compile(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseFrom reads and parses one spec from a reader (a file, an embedded
// FS entry, an HTTP body).
func ParseFrom(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return Parse(data)
}

// Program is a compiled spec: resolved indices, the derived dependency
// graph and a deterministic topological order, ready for the interpreter
// and the DAG planner.
type Program struct {
	Spec *Spec

	Class []modelapi.KernelClass // per kernel
	Place []sched.Placement      // per kernel
	// Reads and Writes hold buffer indices per kernel, in declaration
	// order, deduplicated.
	Reads  [][]int
	Writes [][]int
	// Deps holds, per kernel, the sorted deduplicated indices of kernels
	// that must finish first (dataflow plus After edges).
	Deps [][]int
	// Order is the deterministic topological order: Kahn's algorithm with
	// the ready set drained in spec-declaration order.
	Order []int
	// Edges is the total dependency-edge count.
	Edges int
	// Output marks each buffer whose final write no kernel consumes —
	// the workload's results, the only buffers a programmer reads back
	// at the end of an explicitly-staged run.
	Output []bool
}

// Compile validates the spec and builds its Program. Errors name the
// offending kernel or buffer.
func (s *Spec) Compile() (*Program, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("workload: spec missing name")
	}
	if s.Iterations < 0 {
		return nil, fmt.Errorf("workload: spec %s: iterations %d must not be negative", s.Name, s.Iterations)
	}
	if len(s.Kernels) == 0 {
		return nil, fmt.Errorf("workload: spec %s has no kernels", s.Name)
	}

	bufIdx := make(map[string]int, len(s.Buffers))
	for i, b := range s.Buffers {
		if b.Name == "" {
			return nil, fmt.Errorf("workload: spec %s: buffer %d missing name", s.Name, i)
		}
		if _, dup := bufIdx[b.Name]; dup {
			return nil, fmt.Errorf("workload: spec %s: duplicate buffer name %q", s.Name, b.Name)
		}
		if b.Bytes <= 0 {
			return nil, fmt.Errorf("workload: spec %s: buffer %s size %d must be positive", s.Name, b.Name, b.Bytes)
		}
		bufIdx[b.Name] = i
	}

	n := len(s.Kernels)
	kernIdx := make(map[string]int, n)
	for i, k := range s.Kernels {
		if k.Name == "" {
			return nil, fmt.Errorf("workload: spec %s: kernel %d missing name", s.Name, i)
		}
		if _, dup := kernIdx[k.Name]; dup {
			return nil, fmt.Errorf("workload: spec %s: duplicate kernel name %q", s.Name, k.Name)
		}
		kernIdx[k.Name] = i
	}

	p := &Program{
		Spec:   s,
		Class:  make([]modelapi.KernelClass, n),
		Place:  make([]sched.Placement, n),
		Reads:  make([][]int, n),
		Writes: make([][]int, n),
		Deps:   make([][]int, n),
	}

	depSet := make([]map[int]bool, n)
	addDep := func(from, to int) {
		if from == to {
			return // a kernel both reading and writing a buffer is not a self-edge
		}
		if depSet[to] == nil {
			depSet[to] = make(map[int]bool)
		}
		depSet[to][from] = true
	}

	// Dataflow state per buffer, advanced in declaration order.
	lastWriter := make([]int, len(s.Buffers))
	readersSince := make([][]int, len(s.Buffers))
	for i := range lastWriter {
		lastWriter[i] = -1
	}

	for i, k := range s.Kernels {
		var err error
		if p.Class[i], err = parseClass(k.Class); err != nil {
			return nil, fmt.Errorf("workload: spec %s: kernel %s: %w", s.Name, k.Name, err)
		}
		if p.Place[i], err = parseDevice(k.Device); err != nil {
			return nil, fmt.Errorf("workload: spec %s: kernel %s: %w", s.Name, k.Name, err)
		}
		if k.Items <= 0 {
			return nil, fmt.Errorf("workload: spec %s: kernel %s: items %d must be positive", s.Name, k.Name, k.Items)
		}
		if k.WavefrontHint < 0 {
			return nil, fmt.Errorf("workload: spec %s: kernel %s: wavefront_hint %d must not be negative", s.Name, k.Name, k.WavefrontHint)
		}
		if bad, v := negativePerItem(k); bad != "" {
			return nil, fmt.Errorf("workload: spec %s: kernel %s: %s %g must not be negative", s.Name, k.Name, bad, v)
		}
		if k.MissRate < 0 || k.MissRate > 1 {
			return nil, fmt.Errorf("workload: spec %s: kernel %s: miss_rate %g outside [0,1]", s.Name, k.Name, k.MissRate)
		}
		if k.Coalesce < 0 || k.Coalesce > 1 {
			return nil, fmt.Errorf("workload: spec %s: kernel %s: coalesce %g outside [0,1]", s.Name, k.Name, k.Coalesce)
		}

		seen := map[int]bool{}
		for _, name := range k.Reads {
			b, ok := bufIdx[name]
			if !ok {
				return nil, fmt.Errorf("workload: spec %s: kernel %s reads unknown buffer %q", s.Name, k.Name, name)
			}
			if seen[b] {
				continue
			}
			seen[b] = true
			p.Reads[i] = append(p.Reads[i], b)
			if lastWriter[b] >= 0 {
				addDep(lastWriter[b], i) // read-after-write
			}
			readersSince[b] = append(readersSince[b], i)
		}
		seen = map[int]bool{}
		for _, name := range k.Writes {
			b, ok := bufIdx[name]
			if !ok {
				return nil, fmt.Errorf("workload: spec %s: kernel %s writes unknown buffer %q", s.Name, k.Name, name)
			}
			if seen[b] {
				continue
			}
			seen[b] = true
			p.Writes[i] = append(p.Writes[i], b)
			if lastWriter[b] >= 0 {
				addDep(lastWriter[b], i) // write-after-write
			}
			for _, r := range readersSince[b] {
				addDep(r, i) // write-after-read
			}
			lastWriter[b] = i
			readersSince[b] = nil
		}
		for _, name := range k.After {
			j, ok := kernIdx[name]
			if !ok {
				return nil, fmt.Errorf("workload: spec %s: kernel %s is after unknown kernel %q", s.Name, k.Name, name)
			}
			if j == i {
				return nil, fmt.Errorf("workload: spec %s: kernel %s is after itself", s.Name, k.Name)
			}
			addDep(j, i)
		}
	}

	p.Output = make([]bool, len(s.Buffers))
	for b := range p.Output {
		// Written, and no reader after the last write: a terminal result.
		p.Output[b] = lastWriter[b] >= 0 && len(readersSince[b]) == 0
	}

	for i := range depSet {
		for d := range depSet[i] {
			p.Deps[i] = append(p.Deps[i], d)
		}
		sort.Ints(p.Deps[i])
		p.Edges += len(p.Deps[i])
	}

	// Kahn's algorithm, draining the ready set in declaration order so
	// the topological order is a pure function of the spec.
	indeg := make([]int, n)
	for i := range p.Deps {
		indeg[i] = len(p.Deps[i])
	}
	placed := make([]bool, n)
	for len(p.Order) < n {
		pick := -1
		for i := 0; i < n; i++ {
			if !placed[i] && indeg[i] == 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			var stuck []string
			for i := 0; i < n; i++ {
				if !placed[i] {
					stuck = append(stuck, s.Kernels[i].Name)
				}
			}
			return nil, fmt.Errorf("workload: spec %s: dependency cycle among kernels %v", s.Name, stuck)
		}
		placed[pick] = true
		p.Order = append(p.Order, pick)
		for i := 0; i < n; i++ {
			for _, d := range p.Deps[i] {
				if d == pick {
					indeg[i]--
				}
			}
		}
	}
	return p, nil
}

// negativePerItem returns the first negative per-item field, if any.
func negativePerItem(k Kernel) (string, float64) {
	fields := []struct {
		name string
		v    float64
	}{
		{"sp_flops", k.SPFlops}, {"dp_flops", k.DPFlops},
		{"load_bytes", k.LoadBytes}, {"store_bytes", k.StoreBytes},
		{"lds_bytes", k.LDSBytes}, {"instrs", k.Instrs},
	}
	for _, f := range fields {
		if f.v < 0 {
			return f.name, f.v
		}
	}
	return "", 0
}

// parseClass maps the spec's class string to a modelapi.KernelClass.
func parseClass(s string) (modelapi.KernelClass, error) {
	switch s {
	case "streaming":
		return modelapi.Streaming, nil
	case "regular":
		return modelapi.Regular, nil
	case "irregular":
		return modelapi.Irregular, nil
	default:
		return 0, fmt.Errorf("unknown class %q (streaming|regular|irregular)", s)
	}
}

// parseDevice maps the spec's device string to a sched.Placement.
func parseDevice(s string) (sched.Placement, error) {
	switch s {
	case "", "any":
		return sched.PlaceAny, nil
	case "host":
		return sched.PlaceHost, nil
	case "accel":
		return sched.PlaceAccel, nil
	default:
		return 0, fmt.Errorf("unknown device %q (any|host|accel)", s)
	}
}

// iterations returns the spec's effective outer-loop count.
func (s *Spec) iterations() int {
	if s.Iterations <= 0 {
		return 1
	}
	return s.Iterations
}

// launchItems returns kernel k's padded NDRange size: items rounded up to
// the wavefront hint.
func (p *Program) launchItems(k int) int {
	kern := p.Spec.Kernels[k]
	items := kern.Items
	if h := kern.WavefrontHint; h > 1 {
		items = (items + h - 1) / h * h
	}
	return items
}

// kernelSpec assembles kernel k's modelapi description.
func (p *Program) kernelSpec(k int) modelapi.KernelSpec {
	kern := p.Spec.Kernels[k]
	co := kern.Coalesce
	if co == 0 {
		co = 1
	}
	return modelapi.KernelSpec{
		Name:     kern.Name,
		Class:    p.Class[k],
		MissRate: kern.MissRate,
		Coalesce: co,
	}
}

// perItem assembles kernel k's per-item counters.
func (p *Program) perItem(k int) exec.Counters {
	kern := p.Spec.Kernels[k]
	return exec.Counters{
		SPFlops:    kern.SPFlops,
		DPFlops:    kern.DPFlops,
		LoadBytes:  kern.LoadBytes,
		StoreBytes: kern.StoreBytes,
		LDSBytes:   kern.LDSBytes,
		Instrs:     kern.Instrs,
	}
}
