package workload

import (
	"reflect"
	"strings"
	"testing"

	"hetbench/internal/sched"
)

// validSpec is a minimal two-branch diamond used across the tests.
const validSpec = `{
  "name": "diamond",
  "buffers": [
    {"name": "in", "bytes": 1024},
    {"name": "a", "bytes": 1024},
    {"name": "b", "bytes": 1024},
    {"name": "out", "bytes": 1024}
  ],
  "kernels": [
    {"name": "left", "class": "streaming", "items": 256, "load_bytes": 4, "reads": ["in"], "writes": ["a"]},
    {"name": "right", "class": "streaming", "items": 256, "load_bytes": 4, "reads": ["in"], "writes": ["b"]},
    {"name": "join", "class": "regular", "items": 256, "load_bytes": 8, "reads": ["a", "b"], "writes": ["out"]}
  ]
}`

func TestParseValid(t *testing.T) {
	s, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Order, []int{0, 1, 2}) {
		t.Errorf("topo order = %v, want [0 1 2]", p.Order)
	}
	if !reflect.DeepEqual(p.Deps[2], []int{0, 1}) {
		t.Errorf("join deps = %v, want [0 1]", p.Deps[2])
	}
	if p.Edges != 2 {
		t.Errorf("edges = %d, want 2", p.Edges)
	}
}

func TestParseRejects(t *testing.T) {
	tests := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"unknown field", `{"name":"x","kernels":[{"name":"k","class":"streaming","items":1,"wibble":3}]}`, "wibble"},
		{"trailing data", validSpec + `{"name":"again"}`, "trailing data"},
		{"truncated", validSpec[:len(validSpec)/2], "unexpected"},
		{"missing name", `{"kernels":[{"name":"k","class":"streaming","items":1}]}`, "missing name"},
		{"no kernels", `{"name":"x"}`, "no kernels"},
		{"dup kernel", `{"name":"x","kernels":[
			{"name":"k","class":"streaming","items":1},
			{"name":"k","class":"streaming","items":1}]}`, "duplicate kernel"},
		{"dup buffer", `{"name":"x","buffers":[{"name":"b","bytes":1},{"name":"b","bytes":1}],
			"kernels":[{"name":"k","class":"streaming","items":1}]}`, "duplicate buffer"},
		{"bad class", `{"name":"x","kernels":[{"name":"k","class":"weird","items":1}]}`, "unknown class"},
		{"bad device", `{"name":"x","kernels":[{"name":"k","class":"streaming","items":1,"device":"fpga"}]}`, "unknown device"},
		{"zero items", `{"name":"x","kernels":[{"name":"k","class":"streaming","items":0}]}`, "items"},
		{"bad buffer size", `{"name":"x","buffers":[{"name":"b","bytes":0}],
			"kernels":[{"name":"k","class":"streaming","items":1}]}`, "size"},
		{"unknown read", `{"name":"x","kernels":[{"name":"k","class":"streaming","items":1,"reads":["ghost"]}]}`, "unknown buffer"},
		{"unknown write", `{"name":"x","kernels":[{"name":"k","class":"streaming","items":1,"writes":["ghost"]}]}`, "unknown buffer"},
		{"unknown after", `{"name":"x","kernels":[{"name":"k","class":"streaming","items":1,"after":["ghost"]}]}`, "unknown kernel"},
		{"self edge", `{"name":"x","kernels":[{"name":"k","class":"streaming","items":1,"after":["k"]}]}`, "after itself"},
		{"cycle", `{"name":"x","kernels":[
			{"name":"a","class":"streaming","items":1,"after":["b"]},
			{"name":"b","class":"streaming","items":1,"after":["a"]}]}`, "cycle"},
		{"bad miss rate", `{"name":"x","kernels":[{"name":"k","class":"streaming","items":1,"miss_rate":1.5}]}`, "miss_rate"},
		{"bad coalesce", `{"name":"x","kernels":[{"name":"k","class":"streaming","items":1,"coalesce":2}]}`, "coalesce"},
		{"negative flops", `{"name":"x","kernels":[{"name":"k","class":"streaming","items":1,"sp_flops":-1}]}`, "sp_flops"},
		{"negative iterations", `{"name":"x","iterations":-1,"kernels":[{"name":"k","class":"streaming","items":1}]}`, "iterations"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDataflowEdges checks the three hazard classes each derive an edge.
func TestDataflowEdges(t *testing.T) {
	spec := `{
	  "name": "hazards",
	  "buffers": [{"name": "x", "bytes": 64}],
	  "kernels": [
	    {"name": "w1", "class": "streaming", "items": 1, "writes": ["x"]},
	    {"name": "r1", "class": "streaming", "items": 1, "reads": ["x"]},
	    {"name": "w2", "class": "streaming", "items": 1, "writes": ["x"]}
	  ]
	}`
	s, err := Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Deps[1], []int{0}) {
		t.Errorf("RAW: r1 deps = %v, want [0]", p.Deps[1])
	}
	// w2 carries both the WAW edge from w1 and the WAR edge from r1.
	if !reflect.DeepEqual(p.Deps[2], []int{0, 1}) {
		t.Errorf("WAW+WAR: w2 deps = %v, want [0 1]", p.Deps[2])
	}
}

// TestTopoOrderDeterministic re-compiles the same spec and demands the
// identical order, and checks Kahn drains the ready set in declaration
// order even when later kernels unblock earlier-declared ones.
func TestTopoOrderDeterministic(t *testing.T) {
	spec := `{
	  "name": "order",
	  "kernels": [
	    {"name": "z", "class": "streaming", "items": 1, "after": ["tail"]},
	    {"name": "head", "class": "streaming", "items": 1},
	    {"name": "tail", "class": "streaming", "items": 1, "after": ["head"]}
	  ]
	}`
	s, err := Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Order, []int{1, 2, 0}) {
		t.Errorf("topo order = %v, want [1 2 0]", first.Order)
	}
	for i := 0; i < 10; i++ {
		again, err := s.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again.Order, first.Order) {
			t.Fatalf("compile %d gave order %v, first gave %v", i, again.Order, first.Order)
		}
	}
}

func TestPlacementAndHints(t *testing.T) {
	spec := `{
	  "name": "pins",
	  "kernels": [
	    {"name": "free", "class": "streaming", "items": 100, "wavefront_hint": 64},
	    {"name": "cpu", "class": "irregular", "items": 100, "device": "host"},
	    {"name": "gpu", "class": "regular", "items": 100, "device": "accel"}
	  ]
	}`
	s, err := Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want := []sched.Placement{sched.PlaceAny, sched.PlaceHost, sched.PlaceAccel}
	if !reflect.DeepEqual(p.Place, want) {
		t.Errorf("placements = %v, want %v", p.Place, want)
	}
	if got := p.launchItems(0); got != 128 {
		t.Errorf("hinted launch items = %d, want 128 (100 rounded up to 64)", got)
	}
	if got := p.launchItems(1); got != 100 {
		t.Errorf("unhinted launch items = %d, want 100", got)
	}
}

// TestDedupReads checks repeated buffer references collapse to one edge
// and one staging entry.
func TestDedupReads(t *testing.T) {
	spec := `{
	  "name": "dup",
	  "buffers": [{"name": "x", "bytes": 64}],
	  "kernels": [
	    {"name": "w", "class": "streaming", "items": 1, "writes": ["x", "x"]},
	    {"name": "r", "class": "streaming", "items": 1, "reads": ["x", "x", "x"]}
	  ]
	}`
	s, err := Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Reads[1]) != 1 || len(p.Writes[0]) != 1 {
		t.Errorf("dedup failed: reads %v writes %v", p.Reads[1], p.Writes[0])
	}
	if p.Edges != 1 {
		t.Errorf("edges = %d, want 1", p.Edges)
	}
}
