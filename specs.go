package hetbench

import "embed"

// SpecFS embeds the shipped workload specs under specs/ — the
// HeteroBench-style multi-kernel pipelines internal/workload executes
// (see EXPERIMENTS.md "Workload specs"). Embedding them at the repo root
// keeps the JSON next to the docs while letting internal/harness load
// them without touching the filesystem; specs_test.go asserts every
// shipped spec parses and compiles, so a bad commit fails `go test`.
//
//go:embed specs/*.json
var SpecFS embed.FS

// SpecPaths lists the shipped specs in presentation order (the order the
// dag experiment sweeps them).
func SpecPaths() []string {
	return []string{
		"specs/sobel.json",
		"specs/canny.json",
		"specs/3mm.json",
		"specs/mlp.json",
	}
}
