package hetbench

import (
	"testing"

	"hetbench/internal/workload"
)

// TestShippedSpecsLoad asserts every committed spec under specs/ parses,
// validates and compiles — a bad spec fails `go test ./...`, not a user's
// `hetbench -exp dag` run.
func TestShippedSpecsLoad(t *testing.T) {
	paths := SpecPaths()
	if len(paths) != 4 {
		t.Fatalf("expected 4 shipped specs, got %d", len(paths))
	}
	ents, err := SpecFS.ReadDir("specs")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(paths) {
		t.Errorf("specs/ holds %d files but SpecPaths lists %d — keep them in sync", len(ents), len(paths))
	}

	tests := []struct {
		path    string
		name    string
		kernels int
		edges   int
	}{
		{"specs/sobel.json", "sobel", 3, 2},
		{"specs/canny.json", "canny", 5, 5},
		{"specs/3mm.json", "3mm", 3, 2},
		{"specs/mlp.json", "mlp", 4, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			data, err := SpecFS.ReadFile(tc.path)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := workload.Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Name != tc.name {
				t.Errorf("spec name = %q, want %q", spec.Name, tc.name)
			}
			prog, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if got := len(prog.Spec.Kernels); got != tc.kernels {
				t.Errorf("kernels = %d, want %d", got, tc.kernels)
			}
			if prog.Edges != tc.edges {
				t.Errorf("edges = %d, want %d", prog.Edges, tc.edges)
			}
			if len(prog.Order) != tc.kernels {
				t.Errorf("topo order covers %d of %d kernels", len(prog.Order), tc.kernels)
			}
		})
	}
}
